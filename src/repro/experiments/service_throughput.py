"""Service-level experiment: the paper's attacks against a deployed gateway.

Everything the paper measures happens to a filter *object*; this
experiment re-measures it at the layer real deployments care about -- a
sharded membership service under concurrent traffic.  Five in-process
scenarios run the same honest workload through a
:class:`~repro.service.gateway.MembershipGateway`:

* ``honest``            -- no adversary (baseline throughput/FP rate);
* ``aimed-pollution``   -- public shard routing, so the chosen-insertion
  adversary aims every crafted item at shard 0 (Section 4.1,
  concentrated ``shards``-fold) and follows with ghost queries
  (Section 4.2);
* ``aimed+rate-limit``  -- same attack behind a per-client token bucket;
* ``keyed-routing``     -- the gateway routes with a secret SipHash key,
  the adversary still aims via the public hash and now sprays shards;
* ``latency-attack``    -- the worst-case-latency query stream of
  Section 4.2 aimed at shard 0, read off that shard's query p99.

Then the *same seeded attack workload* is replayed over three
transports -- in-process, TCP against a local backend, and TCP against a
process-pool backend (one worker process per shard) -- so real serving
overhead and multi-core parallelism become reproduction outputs rather
than folklore.  Finally the aimed-pollution gateway is snapshotted,
restored into a fresh instance, and re-probed to demonstrate the
warm-restart path.

Notes also record the batch-API microbenchmark (vectorized
``contains_batch``/``add_batch`` vs the scalar loop) that makes the
gateway's hot path worth having.
"""

from __future__ import annotations

import asyncio
import time
from functools import partial

from repro.core.bloom import BloomFilter
from repro.exceptions import SnapshotError
from repro.experiments.runner import ExperimentResult
from repro.service.admission import ClientRateLimiter, SaturationGuard
from repro.service.backends import LocalBackend, ProcessPoolBackend, ShardBackend
from repro.service.client import MembershipClient
from repro.service.driver import AdversarialTrafficDriver, TrafficReport
from repro.service.gateway import MembershipGateway
from repro.service.server import MembershipServer
from repro.service.sharding import HashShardPicker, KeyedShardPicker
from repro.service.snapshots import restore_gateway, snapshot_gateway
from repro.urlgen.faker import UrlFactory

__all__ = ["run"]

_SHARDS = 4
_K = 4
_THRESHOLD = 0.35


def _shard_filter(m: int) -> BloomFilter:
    """Module-level shard factory (picklable for the process backend)."""
    return BloomFilter(m, _K)


def _batch_microbench(scale: float, seed: int) -> tuple[int, float, float, float, float]:
    """(items, scalar_q_us, batch_q_us, scalar_a_us, batch_a_us) per item."""
    count = max(1_000, int(10_000 * scale))
    items = UrlFactory(seed=seed + 11).urls(count)
    target = BloomFilter(65_536, _K)
    target.add_batch(items[: count // 2])

    start = time.perf_counter()
    scalar_answers = [item in target for item in items]
    scalar_q = time.perf_counter() - start
    start = time.perf_counter()
    batch_answers = target.contains_batch(items)
    batch_q = time.perf_counter() - start
    assert scalar_answers == batch_answers

    scalar_target = BloomFilter(65_536, _K)
    batch_target = BloomFilter(65_536, _K)
    start = time.perf_counter()
    for item in items:
        scalar_target.add(item)
    scalar_a = time.perf_counter() - start
    start = time.perf_counter()
    batch_target.add_batch(items)
    batch_a = time.perf_counter() - start
    assert scalar_target.to_bytes() == batch_target.to_bytes()

    to_us = 1e6 / count
    return count, scalar_q * to_us, batch_q * to_us, scalar_a * to_us, batch_a * to_us


def _workload(scale: float, attack: bool, latency: bool = False) -> dict:
    return dict(
        honest_clients=3,
        honest_inserts=max(40, int(800 * scale)),
        honest_queries=max(40, int(800 * scale)),
        batch=16,
        pollution_inserts=max(30, int(240 * scale)) if attack else 0,
        ghost_queries=max(8, int(48 * scale)) if attack else 0,
        ghost_min_fill=_THRESHOLD * 0.6,
        latency_queries=max(16, int(96 * scale)) if latency else 0,
        latency_min_fill=_THRESHOLD * 0.4,
        target_shard=0,
        probe_queries=max(100, int(800 * scale)),
    )


def _scenario(
    name: str,
    scale: float,
    seed: int,
    keyed_routing: bool,
    rate_limit: float | None,
    attack: bool,
    latency: bool = False,
) -> tuple[str, TrafficReport, MembershipGateway]:
    shard_m = max(256, int(4096 * scale))
    gateway = MembershipGateway(
        lambda: BloomFilter(shard_m, _K),
        shards=_SHARDS,
        picker=KeyedShardPicker() if keyed_routing else HashShardPicker(),
        guard=SaturationGuard(_THRESHOLD),
        limiter=ClientRateLimiter(rate_limit, burst=32) if rate_limit else None,
    )
    # The adversary always aims through the *public* router; when the
    # gateway keys its routing, that aim is wrong.
    driver = AdversarialTrafficDriver(
        gateway, seed=seed, attacker_router=HashShardPicker(), max_trials=250_000
    )
    report = asyncio.run(driver.run(**_workload(scale, attack, latency)))
    return name, report, gateway


async def _replay_over_tcp(
    backend_kind: str, scale: float, seed: int, attack: bool
) -> tuple[TrafficReport, MembershipGateway]:
    """Replay a seeded workload through the wire layer."""
    shard_m = max(256, int(4096 * scale))
    factory = partial(_shard_filter, shard_m)
    backend: ShardBackend = (
        ProcessPoolBackend(factory, _SHARDS)
        if backend_kind == "procpool"
        else LocalBackend(factory, _SHARDS)
    )
    gateway = MembershipGateway(
        factory,
        backend=backend,
        picker=HashShardPicker(),
        guard=SaturationGuard(_THRESHOLD),
    )
    try:
        async with MembershipServer(gateway) as server:
            client = MembershipClient(*server.address)
            try:
                driver = AdversarialTrafficDriver(
                    gateway,
                    seed=seed,
                    attacker_router=HashShardPicker(),
                    max_trials=250_000,
                    transport=client,
                )
                report = await driver.run(**_workload(scale, attack=attack))
            finally:
                await client.aclose()
    finally:
        gateway.close()
    return report, gateway


def _probe_answers(gateway: MembershipGateway, seed: int, count: int) -> list[bool]:
    probes = UrlFactory(seed=seed ^ 0x5EED).urls(count)
    return asyncio.run(gateway.query_batch(probes, client="restart-probe"))


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Run the service-throughput experiment at the given ``scale``."""
    result = ExperimentResult(
        experiment_id="service",
        title="Sharded membership service under adversarial traffic",
        paper_claim=(
            "deployed behind a service, chosen-insertion pollution aimed at one "
            "shard saturates it and ghost queries amplify the false-positive "
            "rate by orders of magnitude; keyed routing and rotation restore "
            "the honest profile; the attack is transport-independent while "
            "serving overhead and parallelism are not"
        ),
        headers=[
            "scenario",
            "transport",
            "routing",
            "ops",
            "ops/s",
            "rotations",
            "limited",
            "shard0_fill",
            "ghost_hit",
            "honest_fp",
            "amplif",
            "shard0_p99_us",
        ],
    )

    scenarios = [
        _scenario("honest", scale, seed, keyed_routing=False, rate_limit=None, attack=False),
        _scenario("aimed-pollution", scale, seed, keyed_routing=False, rate_limit=None, attack=True),
        _scenario("aimed+rate-limit", scale, seed, keyed_routing=False, rate_limit=400.0, attack=True),
        _scenario("keyed-routing", scale, seed, keyed_routing=True, rate_limit=None, attack=True),
        _scenario("latency-attack", scale, seed, keyed_routing=False, rate_limit=None, attack=False, latency=True),
    ]

    def add_row(name: str, transport: str, routing: str, report: TrafficReport) -> None:
        shard0 = report.snapshots[0]
        result.add_row(
            name,
            transport,
            routing,
            report.operations,
            round(report.throughput),
            report.rotations,
            report.rate_limited,
            round(shard0.fill_ratio, 3),
            round(report.ghost_hit_rate, 3),
            round(report.honest_fp_rate, 4),
            round(report.amplification, 1),
            round(shard0.query_p99_us, 1),
        )

    for name, report, gateway in scenarios:
        add_row(name, "inproc", gateway.picker.name.split("(")[0], report)

    by_name = {name: report for name, report, _ in scenarios}
    aimed = by_name["aimed-pollution"]
    keyed = by_name["keyed-routing"]
    result.note(
        f"aimed pollution triggers {aimed.rotations} rotation(s) and ghosts hit "
        f"{aimed.ghost_hit_rate:.0%}; keyed routing absorbs the same attack with "
        f"{keyed.rotations} rotation(s) of the target shard"
    )
    latency = by_name["latency-attack"]
    honest = by_name["honest"]
    result.note(
        f"latency-query stream: {latency.latency_queries} worst-case negatives "
        f"walking {latency.latency_mean_probes:.1f} probes each push shard0 query "
        f"p99 to {latency.snapshots[0].query_p99_us:.1f}us "
        f"(honest baseline {honest.snapshots[0].query_p99_us:.1f}us)"
    )

    # -- transport comparison ---------------------------------------------
    # The same seeded *attack* workload replays over TCP against both
    # backends (same row structure as the in-process run: that is the
    # transport-independence claim) ...
    tcp_local, _ = asyncio.run(_replay_over_tcp("local", scale, seed, attack=True))
    tcp_pool, _ = asyncio.run(_replay_over_tcp("procpool", scale, seed, attack=True))
    add_row("aimed-pollution", "tcp-local", "murmur3", tcp_local)
    add_row("aimed-pollution", "tcp-procpool", "murmur3", tcp_pool)
    # ... while serving overhead is read off the *honest* workload, whose
    # clock contains no adversarial crafting time.
    honest_local, _ = asyncio.run(_replay_over_tcp("local", scale, seed, attack=False))
    honest_pool, _ = asyncio.run(_replay_over_tcp("procpool", scale, seed, attack=False))
    add_row("honest", "tcp-local", "murmur3", honest_local)
    add_row("honest", "tcp-procpool", "murmur3", honest_pool)
    if honest_local.throughput > 0 and honest_pool.throughput > 0:
        result.note(
            f"serving overhead (honest workload): inproc "
            f"{honest.throughput:,.0f} -> tcp-local "
            f"{honest_local.throughput:,.0f} ops/s "
            f"(x{honest.throughput / honest_local.throughput:.1f} slower over the "
            f"wire); tcp-procpool {honest_pool.throughput:,.0f} ops/s "
            f"(x{honest_local.throughput / honest_pool.throughput:.2f} vs "
            f"tcp-local; one worker per shard, speedup needs multi-core and "
            f"CPU-bound batches)"
        )

    # -- warm restart: snapshot, restore, identical answers --------------
    _, aimed_report, aimed_gateway = scenarios[1]
    probe_count = max(100, int(400 * scale))
    before = _probe_answers(aimed_gateway, seed, probe_count)
    raw = snapshot_gateway(aimed_gateway)
    shard_m = max(256, int(4096 * scale))
    restarted = MembershipGateway(
        lambda: BloomFilter(shard_m, _K),
        shards=_SHARDS,
        picker=HashShardPicker(),
        guard=SaturationGuard(_THRESHOLD),
    )
    restore_gateway(restarted, raw)
    after = _probe_answers(restarted, seed, probe_count)
    identical = before == after
    result.note(
        f"warm restart: {len(raw)} snapshot bytes restore {restarted.rotations} "
        f"rotation event(s) and all shard bits; {probe_count} probe answers "
        f"{'identical' if identical else 'DIVERGED'} after restart"
    )
    if not identical:
        # A hard failure, not an assert: this invariant must hold even
        # under `python -O`, and the CI smoke run leans on it.
        raise SnapshotError("restored gateway diverged from the snapshot source")

    count, scalar_q, batch_q, scalar_a, batch_a = _batch_microbench(scale, seed)
    result.note(
        f"batch hot path ({count} items): query {scalar_q:.2f} -> {batch_q:.2f} "
        f"us/item (x{scalar_q / batch_q:.2f}), insert {scalar_a:.2f} -> "
        f"{batch_a:.2f} us/item (x{scalar_a / batch_a:.2f})"
    )
    return result
