"""Service-level experiment: the paper's attacks against a deployed gateway.

Everything the paper measures happens to a filter *object*; this
experiment re-measures it at the layer real deployments care about -- a
sharded membership service under concurrent traffic.  Four scenarios run
the same honest workload through a
:class:`~repro.service.gateway.MembershipGateway`:

* ``honest``            -- no adversary (baseline throughput/FP rate);
* ``aimed-pollution``   -- public shard routing, so the chosen-insertion
  adversary aims every crafted item at shard 0 (Section 4.1,
  concentrated ``shards``-fold) and follows with ghost queries
  (Section 4.2);
* ``aimed+rate-limit``  -- same attack behind a per-client token bucket;
* ``keyed-routing``     -- the gateway routes with a secret SipHash key,
  the adversary still aims via the public hash and now sprays shards.

Notes also record the batch-API microbenchmark (vectorized
``contains_batch``/``add_batch`` vs the scalar loop) that makes the
gateway's hot path worth having.
"""

from __future__ import annotations

import asyncio
import time

from repro.core.bloom import BloomFilter
from repro.experiments.runner import ExperimentResult
from repro.service.admission import ClientRateLimiter, SaturationGuard
from repro.service.driver import AdversarialTrafficDriver, TrafficReport
from repro.service.gateway import MembershipGateway
from repro.service.sharding import HashShardPicker, KeyedShardPicker
from repro.urlgen.faker import UrlFactory

__all__ = ["run"]

_SHARDS = 4
_K = 4
_THRESHOLD = 0.35


def _batch_microbench(scale: float, seed: int) -> tuple[int, float, float, float, float]:
    """(items, scalar_q_us, batch_q_us, scalar_a_us, batch_a_us) per item."""
    count = max(1_000, int(10_000 * scale))
    items = UrlFactory(seed=seed + 11).urls(count)
    target = BloomFilter(65_536, _K)
    target.add_batch(items[: count // 2])

    start = time.perf_counter()
    scalar_answers = [item in target for item in items]
    scalar_q = time.perf_counter() - start
    start = time.perf_counter()
    batch_answers = target.contains_batch(items)
    batch_q = time.perf_counter() - start
    assert scalar_answers == batch_answers

    scalar_target = BloomFilter(65_536, _K)
    batch_target = BloomFilter(65_536, _K)
    start = time.perf_counter()
    for item in items:
        scalar_target.add(item)
    scalar_a = time.perf_counter() - start
    start = time.perf_counter()
    batch_target.add_batch(items)
    batch_a = time.perf_counter() - start
    assert scalar_target.to_bytes() == batch_target.to_bytes()

    to_us = 1e6 / count
    return count, scalar_q * to_us, batch_q * to_us, scalar_a * to_us, batch_a * to_us


def _scenario(
    name: str,
    scale: float,
    seed: int,
    keyed_routing: bool,
    rate_limit: float | None,
    attack: bool,
) -> tuple[str, TrafficReport, MembershipGateway]:
    shard_m = max(256, int(4096 * scale))
    gateway = MembershipGateway(
        lambda: BloomFilter(shard_m, _K),
        shards=_SHARDS,
        picker=KeyedShardPicker() if keyed_routing else HashShardPicker(),
        guard=SaturationGuard(_THRESHOLD),
        limiter=ClientRateLimiter(rate_limit, burst=32) if rate_limit else None,
    )
    # The adversary always aims through the *public* router; when the
    # gateway keys its routing, that aim is wrong.
    driver = AdversarialTrafficDriver(
        gateway, seed=seed, attacker_router=HashShardPicker(), max_trials=250_000
    )
    report = asyncio.run(
        driver.run(
            honest_clients=3,
            honest_inserts=max(40, int(800 * scale)),
            honest_queries=max(40, int(800 * scale)),
            batch=16,
            pollution_inserts=max(30, int(240 * scale)) if attack else 0,
            ghost_queries=max(8, int(48 * scale)) if attack else 0,
            ghost_min_fill=_THRESHOLD * 0.6,
            target_shard=0,
            probe_queries=max(100, int(800 * scale)),
        )
    )
    return name, report, gateway


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Run the service-throughput experiment at the given ``scale``."""
    result = ExperimentResult(
        experiment_id="service",
        title="Sharded membership service under adversarial traffic",
        paper_claim=(
            "deployed behind a service, chosen-insertion pollution aimed at one "
            "shard saturates it and ghost queries amplify the false-positive "
            "rate by orders of magnitude; keyed routing and rotation restore "
            "the honest profile"
        ),
        headers=[
            "scenario",
            "routing",
            "ops",
            "ops/s",
            "rotations",
            "limited",
            "shard0_fill",
            "ghost_hit",
            "honest_fp",
            "amplif",
        ],
    )

    scenarios = [
        _scenario("honest", scale, seed, keyed_routing=False, rate_limit=None, attack=False),
        _scenario("aimed-pollution", scale, seed, keyed_routing=False, rate_limit=None, attack=True),
        _scenario("aimed+rate-limit", scale, seed, keyed_routing=False, rate_limit=400.0, attack=True),
        _scenario("keyed-routing", scale, seed, keyed_routing=True, rate_limit=None, attack=True),
    ]
    for name, report, gateway in scenarios:
        shard0 = report.snapshots[0]
        result.add_row(
            name,
            gateway.picker.name.split("(")[0],
            report.operations,
            round(report.throughput),
            report.rotations,
            report.rate_limited,
            round(shard0.fill_ratio, 3),
            round(report.ghost_hit_rate, 3),
            round(report.honest_fp_rate, 4),
            round(report.amplification, 1),
        )

    by_name = {name: report for name, report, _ in scenarios}
    aimed = by_name["aimed-pollution"]
    keyed = by_name["keyed-routing"]
    result.note(
        f"aimed pollution triggers {aimed.rotations} rotation(s) and ghosts hit "
        f"{aimed.ghost_hit_rate:.0%}; keyed routing absorbs the same attack with "
        f"{keyed.rotations} rotation(s) of the target shard"
    )

    count, scalar_q, batch_q, scalar_a, batch_a = _batch_microbench(scale, seed)
    result.note(
        f"batch hot path ({count} items): query {scalar_q:.2f} -> {batch_q:.2f} "
        f"us/item (x{scalar_q / batch_q:.2f}), insert {scalar_a:.2f} -> "
        f"{batch_a:.2f} us/item (x{scalar_a / batch_a:.2f})"
    )
    return result
