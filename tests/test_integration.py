"""Cross-module integration tests: full attack->countermeasure stories."""

from __future__ import annotations

import pytest

from repro.adversary.pollution import PollutionAttack
from repro.adversary.query import GhostForgery
from repro.apps.scrapy.attack import BlindingAttack
from repro.apps.scrapy.dupefilter import BloomDupeFilter
from repro.apps.scrapy.spider import Spider
from repro.apps.scrapy.webgraph import WebGraph
from repro.core.bloom import BloomFilter
from repro.core.dablooms import Dablooms
from repro.countermeasures.keyed import KeyedBloomFilter
from repro.countermeasures.worst_case import compare_designs
from repro.urlgen.faker import UrlFactory


def test_story_pollute_then_flood_with_ghosts():
    """Chosen-insertion pollution makes query-only forgery cheap."""
    target = BloomFilter(3200, 4)
    # Before pollution: ghosts are expensive.
    factory = UrlFactory(seed=1)
    for _ in range(100):
        target.add(factory.url())
    sparse_probability = GhostForgery(target).success_probability()

    PollutionAttack(target, seed=2).run(500)
    dense_probability = GhostForgery(target).success_probability()
    assert dense_probability > 20 * sparse_probability

    # And the forged ghosts genuinely fool the filter.
    ghosts = GhostForgery(target, seed=3).craft(5)
    assert all(g.item in target for g in ghosts)


def test_story_blinding_vs_hardened_spider():
    """The same blinding campaign, against optimal and worst-case filters."""
    victim = WebGraph.random_site("victim.example", 150, seed=21)

    attack = BlindingAttack(500, 0.05, seed=5)
    report = attack.run(victim, n_links=400)

    # Hardened spider: same memory, worst-case k.
    reference = BloomDupeFilter(500, 0.05)
    m = reference.filter.m
    hardened_filter = BloomFilter.worst_case(500, m)
    hardened = BloomDupeFilter.__new__(BloomDupeFilter)
    hardened.filter = hardened_filter
    hardened.capacity = 500
    hardened.error_rate = 0.05
    hardened.marked = 0

    site, _ = attack.build_adversary_site(n_links=400)
    world = WebGraph().merge(site).merge(victim)
    spider = Spider(world, hardened)
    spider.crawl([attack.root_url])
    stats = spider.crawl([victim.urls()[0]])
    hardened_coverage = stats.coverage_of(victim.urls())

    # The attack was crafted against k=4 geometry; on the hardened filter
    # it degenerates and coverage stays at least as good.
    assert hardened_coverage >= report.victim_coverage_attacked


def test_story_keyed_filter_ends_the_arms_race():
    """Crafted items lose their edge entirely once hashing is keyed."""
    keyed = KeyedBloomFilter(3200, 4, key=bytes(range(16)))
    shadow = BloomFilter(3200, 4)  # what the attacker *thinks* is deployed
    report = PollutionAttack(shadow, seed=6).run(300, insert=True)
    for item in report.items:
        keyed.add(item)
    # On the attacker's model every item added 4 fresh bits; on the keyed
    # filter the same items behave like random inserts.
    assert shadow.hamming_weight == 1200
    import math

    expected_random = 3200 * (1 - math.exp(-1200 / 3200))
    assert abs(keyed.hamming_weight - expected_random) < 0.05 * 3200


def test_story_dablooms_lifecycle_under_attack():
    """Report, pollute, overflow: the blocklist ends up bigger and blinder."""
    from repro.apps.dablooms.attack import DabloomsOverflowAttack
    from repro.apps.dablooms.service import ShorteningService

    service = ShorteningService(slice_capacity=64, f0=0.05)
    real_threats = [f"http://threat-{i}.example/" for i in range(30)]
    for url in real_threats:
        service.report_malicious(url)
    assert all(service.is_blocked(u) for u in real_threats)

    # Overflow the remainder of the first slice, then one more report
    # forces a scale-up.
    DabloomsOverflowAttack(service).run(64 - 30)
    service.report_malicious("http://post-attack.example/")
    assert service.blocklist.slice_count == 2
    # Collateral: wrapped counters may have erased real threats too.
    surviving = sum(1 for u in real_threats if service.is_blocked(u))
    assert surviving <= len(real_threats)


def test_design_comparison_consistent_with_live_filters():
    cmp = compare_designs(3200, 600)
    live_optimal = BloomFilter(3200, cmp.k_optimal)
    live_hardened = BloomFilter(3200, cmp.k_worst_case)
    PollutionAttack(live_optimal, seed=7).run(600)
    PollutionAttack(live_hardened, seed=7).run(600)
    assert live_optimal.current_fpp() == pytest.approx(cmp.optimal_adv, rel=0.02)
    assert live_hardened.current_fpp() == pytest.approx(cmp.worst_case_adv, rel=0.02)
