"""Query-only attacks: ghosts, latency queries, decoy trees."""

from __future__ import annotations

import pytest

from repro.adversary.query import (
    DecoyTree,
    GhostForgery,
    LatencyQueryForgery,
    false_positive_success_probability,
)
from repro.core.bloom import BloomFilter
from repro.exceptions import ParameterError
from repro.urlgen.faker import UrlFactory


def half_full_filter() -> BloomFilter:
    bf = BloomFilter(600, 3)
    factory = UrlFactory(seed=77)
    while bf.fill_ratio < 0.5:
        bf.add(factory.url())
    return bf


def test_ghost_is_false_positive():
    bf = half_full_filter()
    inserted_support = bf.support()
    ghost = GhostForgery(bf).craft_one()
    assert ghost.item in bf  # filter says present
    assert set(ghost.indexes) <= inserted_support  # eq. (8)


def test_ghosts_do_not_change_filter_state():
    bf = half_full_filter()
    weight = bf.hamming_weight
    GhostForgery(bf).craft(3)
    assert bf.hamming_weight == weight


def test_ghost_success_probability_property():
    bf = half_full_filter()
    forgery = GhostForgery(bf)
    expected = (bf.hamming_weight / bf.m) ** bf.k
    assert forgery.success_probability() == pytest.approx(expected)


def test_ghost_trials_track_probability():
    bf = half_full_filter()
    forgery = GhostForgery(bf)
    ghosts = forgery.craft(30)
    mean_trials = sum(g.trials for g in ghosts) / len(ghosts)
    expected = 1.0 / forgery.success_probability()
    assert 0.4 * expected <= mean_trials <= 2.5 * expected


def test_fp_probability_bounds_and_validation():
    assert false_positive_success_probability(100, 0, 4) == 0.0
    assert false_positive_success_probability(100, 100, 4) == 1.0
    with pytest.raises(ParameterError):
        false_positive_success_probability(100, 101, 4)
    with pytest.raises(ParameterError):
        false_positive_success_probability(0, 0, 4)


def test_latency_query_shape():
    bf = half_full_filter()
    forgery = LatencyQueryForgery(bf)
    crafted = forgery.craft_one()
    # First k-1 indexes set, last unset: maximal work, then rejection.
    assert all(bf.bits.get(i) for i in crafted.indexes[:-1])
    assert not bf.bits.get(crafted.indexes[-1])
    assert crafted.item not in bf


def test_latency_query_touches_all_positions():
    bf = half_full_filter()
    forgery = LatencyQueryForgery(bf)
    crafted = forgery.craft_one()
    assert forgery.probes_touched(crafted.indexes) == bf.k


def test_probes_touched_short_circuits_on_empty():
    bf = BloomFilter(64, 4)
    forgery = LatencyQueryForgery.__new__(LatencyQueryForgery)
    forgery.target = bf
    forgery._is_set = bf.bits.get
    # All bits unset: one probe suffices to reject.
    assert forgery.probes_touched((1, 2, 3, 4)) == 1


def test_decoy_tree_structure():
    bf = half_full_filter()
    tree = DecoyTree.build(bf, root="http://evil.example", depth=3)
    assert len(tree.decoys) == 3
    assert tree.pages[0] == "http://evil.example"
    assert tree.pages[-1] == tree.ghost
    assert tree.ghost in bf  # the ghost is a false positive
    # Decoys nest under the root, ghost under the deepest decoy.
    assert tree.decoys[0].startswith("http://evil.example/")
    assert tree.ghost.startswith(tree.decoys[-1])


def test_decoy_tree_depth_validation():
    bf = half_full_filter()
    with pytest.raises(ParameterError):
        DecoyTree.build(bf, depth=0)
