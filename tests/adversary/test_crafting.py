"""CraftingEngine: the brute-force forge."""

from __future__ import annotations

import pytest

from repro.adversary.crafting import CraftingEngine, expected_trials
from repro.exceptions import CraftingBudgetExceeded, ParameterError
from repro.hashing.crypto import SHA512
from repro.hashing.recycling import RecyclingStrategy
from repro.urlgen.faker import UrlFactory


def make_engine(max_trials: int = 100_000) -> CraftingEngine:
    return CraftingEngine(
        RecyclingStrategy(SHA512()),
        k=4,
        m=256,
        candidates=UrlFactory(seed=1).candidate_stream(),
        max_trials=max_trials,
    )


def test_craft_satisfies_predicate():
    engine = make_engine()
    result = engine.craft(lambda idx: idx[0] < 32)
    assert result.indexes[0] < 32
    assert result.trials >= 1
    assert engine.total_trials == result.trials


def test_trivial_predicate_first_candidate():
    engine = make_engine()
    result = engine.craft(lambda idx: True)
    assert result.trials == 1


def test_budget_exceeded_raises_with_trial_count():
    engine = make_engine(max_trials=50)
    with pytest.raises(CraftingBudgetExceeded) as excinfo:
        engine.craft(lambda idx: False)
    assert excinfo.value.trials == 50
    assert engine.total_trials == 50


def test_craft_many_re_evaluates_predicate():
    engine = make_engine()
    seen: set[int] = set()

    def predicate_factory():
        taken = frozenset(seen)
        return lambda idx: idx[0] not in taken

    results = engine.craft_many(predicate_factory, 5)
    for r in results:
        seen.add(r.indexes[0])
    assert len(results) == 5


def test_craft_many_rejects_negative_count():
    with pytest.raises(ParameterError):
        make_engine().craft_many(lambda: (lambda idx: True), -1)


def test_trial_accounting_accumulates():
    engine = make_engine()
    first = engine.craft(lambda idx: idx[0] % 8 == 0)
    second = engine.craft(lambda idx: idx[0] % 8 == 1)
    assert engine.total_trials == first.trials + second.trials


def test_expected_trials():
    assert expected_trials(0.5) == 2.0
    assert expected_trials(1.0) == 1.0
    with pytest.raises(ParameterError):
        expected_trials(0.0)
    with pytest.raises(ParameterError):
        expected_trials(1.5)


def test_measured_trials_match_geometric_expectation():
    # Predicate with known probability 1/8: mean trials over many crafts
    # should land near 8.
    engine = make_engine(max_trials=10_000)
    results = [engine.craft(lambda idx: idx[0] % 8 == 3) for _ in range(120)]
    mean_trials = sum(r.trials for r in results) / len(results)
    assert 5.5 <= mean_trials <= 11.0


def test_invalid_construction():
    with pytest.raises(ParameterError):
        CraftingEngine(RecyclingStrategy(SHA512()), 0, 10, [], 10)
    with pytest.raises(ParameterError):
        CraftingEngine(RecyclingStrategy(SHA512()), 2, 10, [], 0)
