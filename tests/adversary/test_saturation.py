"""Saturation attack: m/k chosen items vs coupon-collector baseline."""

from __future__ import annotations

import random

import pytest

from repro.adversary.saturation import SaturationAttack, random_saturation_count
from repro.core.analysis import coupon_collector_items
from repro.core.bloom import BloomFilter
from repro.exceptions import ParameterError


def test_saturates_with_m_over_k_items():
    bf = BloomFilter(400, 4)
    attack = SaturationAttack(bf)
    report = attack.run()
    assert report.saturated
    assert report.insertions == 100 == attack.theoretical_items()
    assert report.fill_ratio == 1.0


def test_saturation_with_remainder():
    bf = BloomFilter(103, 4)  # 103 = 25*4 + 3: last batch is padded
    report = SaturationAttack(bf).run()
    assert report.saturated
    assert report.insertions == 26


def test_saturated_filter_accepts_everything():
    bf = BloomFilter(256, 4)
    SaturationAttack(bf).run()
    assert all(f"anything-{i}" in bf for i in range(50))


def test_partial_presaturation_needs_fewer_items():
    bf = BloomFilter(400, 4)
    bf.add_indexes(range(200))  # half the filter already set
    report = SaturationAttack(bf).run()
    assert report.saturated
    assert report.insertions == 50  # only the 200 remaining zeros / 4


def test_random_baseline_larger_by_log_m():
    bf = BloomFilter(500, 4)
    attack = SaturationAttack(bf)
    assert attack.random_baseline_items() == coupon_collector_items(500, 4)
    assert attack.random_baseline_items() > 5 * attack.theoretical_items()


def test_random_saturation_simulation_close_to_theory():
    m, k = 300, 3
    counts = [
        random_saturation_count(m, k, random.Random(seed)) for seed in range(5)
    ]
    mean = sum(counts) / len(counts)
    theory = coupon_collector_items(m, k)
    assert 0.6 * theory <= mean <= 1.6 * theory


def test_random_saturation_validation():
    with pytest.raises(ParameterError):
        random_saturation_count(0, 3)
