"""The attack-budget subsystem: the shared resource meter, crafting
charging, request pacing, deadlines, and the adaptive query strategy."""

from __future__ import annotations

import asyncio

import pytest

from repro.adversary.budget import AdaptiveQueryStrategy, AttackBudget, BudgetSpend
from repro.adversary.pollution import PollutionAttack
from repro.adversary.query import GhostForgery, LatencyQueryForgery
from repro.core.bloom import BloomFilter
from repro.exceptions import AttackBudgetExhausted, ParameterError
from repro.urlgen.faker import UrlFactory


class FakeClock:
    """Settable monotonic clock for deterministic deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_target(m: int = 512, k: int = 4, fill_items: int = 40) -> BloomFilter:
    filt = BloomFilter(m, k)
    for url in UrlFactory(seed=0xF11).urls(fill_items):
        filt.add(url)
    return filt


# ----------------------------------------------------------------------
# AttackBudget: validation, trial metering, deadline
# ----------------------------------------------------------------------


def test_budget_validation():
    for bad in (
        lambda: AttackBudget(max_trials=0),
        lambda: AttackBudget(max_trials=-5),
        lambda: AttackBudget(requests_per_s=0),
        lambda: AttackBudget(deadline_s=-1),
    ):
        with pytest.raises(ParameterError):
            bad()
    budget = AttackBudget(max_trials=10)
    with pytest.raises(ParameterError):
        budget.clamp_trials(0)
    with pytest.raises(ParameterError):
        budget.charge_trials(-1)
    with pytest.raises(ParameterError):
        asyncio.run(budget.pace(0))


def test_trial_clamp_charge_and_exhaustion():
    budget = AttackBudget(max_trials=100)
    assert budget.clamp_trials(250) == 100  # purse smaller than the cap
    assert budget.clamp_trials(30) == 30  # cap smaller than the purse
    budget.charge_trials(70, "ghost")
    assert budget.trials_remaining == 30
    assert budget.clamp_trials(250, "ghost") == 30
    budget.charge_trials(30, "ghost")
    assert budget.trials_remaining == 0
    assert budget.exhausted
    with pytest.raises(AttackBudgetExhausted):
        budget.clamp_trials(1, "ghost")
    # The spend stayed labelled.
    assert budget.spend_by_label() == {
        "ghost": BudgetSpend(label="ghost", trials=100, requests=0)
    }


def test_unmetered_budget_never_exhausts_trials():
    budget = AttackBudget()
    assert budget.trials_remaining is None
    assert budget.clamp_trials(12345) == 12345
    budget.charge_trials(1_000_000)
    assert not budget.exhausted


def test_deadline_expires_via_injected_clock():
    clock = FakeClock()
    budget = AttackBudget(deadline_s=10.0, clock=clock)
    assert not budget.expired  # clock not started yet
    assert budget.time_remaining() == 10.0
    budget.charge_trials(1)  # first charge starts the campaign clock
    clock.now = 9.9
    assert not budget.expired
    assert budget.clamp_trials(5) == 5
    clock.now = 10.0
    assert budget.expired and budget.exhausted
    with pytest.raises(AttackBudgetExhausted):
        budget.clamp_trials(5)
    with pytest.raises(AttackBudgetExhausted):
        asyncio.run(budget.pace(1))
    assert budget.time_remaining() == 0.0


def test_pace_schedules_requests_under_the_rate_ceiling():
    clock = FakeClock()
    slept: list[float] = []

    async def fake_sleep(delay: float) -> None:
        slept.append(delay)
        clock.now += delay

    budget = AttackBudget(requests_per_s=10.0, clock=clock, sleep=fake_sleep)

    async def scenario() -> None:
        await budget.pace(5, "ghost")  # first batch: nothing sent yet
        assert slept == []
        # 5 already sent -> next admission time is 0.5s into the campaign.
        await budget.pace(5, "ghost")
        assert slept == [pytest.approx(0.5)]
        # 10 sent -> earliest is t=1.0; clock already advanced to 0.5.
        await budget.pace(1, "latency")
        assert slept[-1] == pytest.approx(0.5)

    asyncio.run(scenario())
    assert budget.requests_sent == 11
    spend = budget.spend_by_label()
    assert spend["ghost"].requests == 10
    assert spend["latency"].requests == 1


def test_pace_without_ceiling_only_counts():
    budget = AttackBudget()
    asyncio.run(budget.pace(7, "pollution"))
    assert budget.requests_sent == 7
    assert budget.spend_by_label()["pollution"].requests == 7


def test_describe_mentions_every_axis():
    clock = FakeClock()
    budget = AttackBudget(
        max_trials=100, requests_per_s=50.0, deadline_s=9.0, clock=clock
    )
    budget.charge_trials(40)
    text = budget.describe()
    assert "40/100" in text
    assert "50/s" in text
    assert "9s" in text


# ----------------------------------------------------------------------
# Crafting-layer charging (engine + all three attacks)
# ----------------------------------------------------------------------


def test_ghost_forgery_charges_shared_budget_until_exhaustion():
    target = make_target()
    budget = AttackBudget(max_trials=300)
    forgery = GhostForgery(target, max_trials=50_000, budget=budget)
    crafted = 0
    with pytest.raises(AttackBudgetExhausted):
        while True:
            forgery.craft_one()
            crafted += 1
    assert crafted >= 1
    # Never overspends: the last search was clamped to the remainder.
    assert budget.trials_spent == 300
    assert budget.spend_by_label()["ghost"].trials == 300


def test_budget_is_shared_across_attacks_and_labels():
    target = make_target()
    budget = AttackBudget(max_trials=100_000)
    GhostForgery(target, budget=budget).craft_one()
    PollutionAttack(target, budget=budget).craft_one()
    LatencyQueryForgery(target, budget=budget).craft_one()
    spend = budget.spend_by_label()
    assert set(spend) == {"ghost", "pollution", "latency"}
    assert budget.trials_spent == sum(s.trials for s in spend.values())
    assert budget.trials_spent >= 3  # at least one trial per crafted item


def test_engine_without_budget_behaves_as_before():
    target = make_target()
    forgery = GhostForgery(target, max_trials=50_000)
    result = forgery.craft_one()
    assert result.trials >= 1
    assert forgery.engine.budget is None


def test_drained_purse_mid_search_raises_campaign_exhaustion():
    # An impossible predicate against a tiny remaining purse must raise
    # AttackBudgetExhausted (campaign over), not CraftingBudgetExceeded
    # (per-item failure a caller would shrug off and retry).
    target = BloomFilter(512, 4)  # empty: ghost crafting cannot succeed
    budget = AttackBudget(max_trials=25)
    forgery = GhostForgery(target, max_trials=50_000, budget=budget)
    with pytest.raises(AttackBudgetExhausted):
        forgery.craft_one()
    assert budget.trials_spent == 25


# ----------------------------------------------------------------------
# AdaptiveQueryStrategy
# ----------------------------------------------------------------------


def test_strategy_pools_positives_and_promotes_prefixes():
    strategy = AdaptiveQueryStrategy(seed=1)
    strategy.observe(
        ["http://a.com/x/p1", "http://a.com/x/p2", "http://b.net/y/p3"],
        [True, False, True],
    )
    assert strategy.pool_size == 2
    assert strategy.confirmed == 2
    assert set(strategy.promoted_prefixes) == {"http://a.com/x", "http://b.net/y"}
    # Replay walks the pool round-robin and wraps.
    first = strategy.replay_items(1)
    second = strategy.replay_items(2)
    assert first == ["http://a.com/x/p1"]
    assert second == ["http://b.net/y/p3", "http://a.com/x/p1"]


def test_strategy_flushes_on_rotation_fingerprint():
    strategy = AdaptiveQueryStrategy(seed=1)
    strategy.observe(["http://a.com/x/p1"], [True])
    assert strategy.pool_size == 1
    # A *non-pooled* negative is routine (fresh craft raced a change).
    assert not strategy.observe(["http://c.org/z/p9"], [False])
    assert strategy.pool_size == 1
    # A pooled ghost answering negative is a rotation: flush everything.
    assert strategy.observe(["http://a.com/x/p1"], [False])
    assert strategy.pool_size == 0
    assert strategy.promoted_prefixes == ()
    assert strategy.flushes == 1
    assert strategy.replay_items(4) == []
    # Confirmed count is the campaign total, not the live pool.
    assert strategy.confirmed == 1


def test_strategy_candidates_concentrate_on_promoted_prefixes():
    strategy = AdaptiveQueryStrategy(seed=7, promoted_share=1.0)
    factory = UrlFactory(seed=3)
    plain = next(strategy.candidates(factory))  # no promotions yet: base stream
    assert plain.startswith(("http://", "https://"))
    strategy.observe(["http://leak.example/hot/p1"], [True])
    stream = strategy.candidates(UrlFactory(seed=4))
    drawn = [next(stream) for _ in range(8)]
    assert all(url.startswith("http://leak.example/hot/") for url in drawn)
    assert len(set(drawn)) == 8  # still collision-free candidates


def test_strategy_bounds_and_validation():
    with pytest.raises(ParameterError):
        AdaptiveQueryStrategy(max_pool=0)
    with pytest.raises(ParameterError):
        AdaptiveQueryStrategy(promoted_share=1.5)
    strategy = AdaptiveQueryStrategy(seed=2, max_pool=2, max_prefixes=1)
    strategy.observe(
        [f"http://h{i}.com/a/p{i}" for i in range(4)], [True] * 4
    )
    assert strategy.pool_size == 2  # pool capped
    assert len(strategy.promoted_prefixes) == 1  # prefixes capped
    # Duplicate positives do not double-pool.
    strategy.observe(["http://h0.com/a/p0"], [True])
    assert strategy.pool_size == 2


# ----------------------------------------------------------------------
# AttackBudgetConfig (the sweepable literal)
# ----------------------------------------------------------------------


def test_attack_budget_config_builds_fresh_meters():
    from repro.service.config import AttackBudgetConfig

    config = AttackBudgetConfig(
        max_trials=500, requests_per_s=100.0, deadline_s=4.0, strategy="adaptive"
    )
    assert config.adaptive
    assert config.describe() == "500t@100/s<4s"
    first, second = config.build(), config.build()
    assert first is not second  # independently metered per run
    first.charge_trials(500)
    assert first.exhausted and not second.exhausted
    assert second.max_trials == 500
    clock = FakeClock()
    pinned = config.build(clock=clock)
    pinned.charge_trials(1)
    clock.now = 5.0
    assert pinned.expired
    assert AttackBudgetConfig().describe() == "inf"


def test_attack_budget_config_validation():
    from repro.service.config import AttackBudgetConfig

    for bad in (
        lambda: AttackBudgetConfig(max_trials=0),
        lambda: AttackBudgetConfig(requests_per_s=-1.0),
        lambda: AttackBudgetConfig(deadline_s=0),
        lambda: AttackBudgetConfig(strategy="clever"),
    ):
        with pytest.raises(ParameterError):
            bad()
