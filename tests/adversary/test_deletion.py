"""Deletion adversary: forged deletions and collateral false negatives."""

from __future__ import annotations

import pytest

from repro.adversary.deletion import DeletionAttack
from repro.core.counting import CountingBloomFilter
from repro.exceptions import ParameterError


def loaded_filter(n: int = 80, m: int = 2000) -> CountingBloomFilter:
    cbf = CountingBloomFilter(m, 4)
    for i in range(n):
        cbf.add(f"legit-{i}")
    return cbf


def test_victim_erased():
    cbf = loaded_filter()
    attack = DeletionAttack(cbf)
    report = attack.run("legit-10")
    assert report.victim_erased
    assert "legit-10" not in cbf
    assert report.forged_deletions  # at least one forgery was needed


def test_forged_items_appeared_present_before_deletion():
    cbf = loaded_filter()
    attack = DeletionAttack(cbf)
    victim_indexes = set(cbf.indexes("legit-20"))
    report = attack.run("legit-20")
    for crafted in report.forged_deletions:
        # overlap with the victim was the crafting requirement
        assert set(crafted.indexes) & victim_indexes


def test_absent_victim_short_circuits():
    cbf = loaded_filter()
    attack = DeletionAttack(cbf)
    report = attack.run("never-inserted-xyzzy-unique-9q8w7e")
    # A dense filter may report a fresh URL present (false positive); only
    # assert the short-circuit when it was genuinely absent.
    if not report.forged_deletions:
        assert report.victim_erased


def test_collateral_damage_recorded():
    cbf = CountingBloomFilter(120, 4)  # small filter: heavy overlap
    witnesses = [f"legit-{i}" for i in range(40)]
    for w in witnesses:
        cbf.add(w)
    attack = DeletionAttack(cbf)
    report = attack.run("legit-0", witnesses=witnesses)
    assert report.victim_erased
    # Every reported collateral item is genuinely a false negative now.
    for item in report.collateral_false_negatives:
        assert item not in cbf


def test_trial_accounting():
    cbf = loaded_filter()
    attack = DeletionAttack(cbf)
    report = attack.run("legit-3")
    assert report.total_trials == sum(r.trials for r in report.forged_deletions)


def test_requires_counting_filter():
    from repro.core.bloom import BloomFilter

    with pytest.raises(ParameterError):
        DeletionAttack(BloomFilter(100, 2))


def test_max_deletions_bounds_work():
    cbf = loaded_filter(n=200, m=800)  # dense: victims need several forgeries
    attack = DeletionAttack(cbf)
    report = attack.run("legit-50", max_deletions=1)
    assert len(report.forged_deletions) <= 1
