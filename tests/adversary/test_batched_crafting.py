"""Batched-vs-scalar crafting parity: items, indexes, trials, charges.

The batched search path exists purely for speed; this suite pins the
exactness contract from :mod:`repro.adversary.crafting`: for every
attack predicate, in both accel modes, the batched engine returns the
same ``(item, indexes, trials)`` sequence as the scalar loop, charges a
shared :class:`~repro.adversary.budget.AttackBudget` identically, and
raises the same exceptions with the same ``trials`` attributes -- down
to random bit states under hypothesis.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import accel
from repro.adversary.budget import AttackBudget
from repro.adversary.pollution import PollutionAttack
from repro.adversary.query import GhostForgery, LatencyQueryForgery
from repro.adversary.two_choice_attack import TwoChoicePollutionAttack
from repro.core.bloom import BloomFilter
from repro.core.two_choice import TwoChoiceBloomFilter
from repro.exceptions import AttackBudgetExhausted, CraftingBudgetExceeded

MODES = ["pure"] + (["numpy"] if accel.numpy_or_none() is not None else [])

SEED = 99


def _bloom(m: int = 4096, k: int = 6, set_bits: int = 1500) -> BloomFilter:
    target = BloomFilter(m, k)
    target.bits.set_indexes(random.Random(SEED).sample(range(m), set_bits))
    return target


def _two_choice(m: int = 4096, k: int = 4, set_bits: int = 1000) -> TwoChoiceBloomFilter:
    target = TwoChoiceBloomFilter(m, k)
    target.bits.set_indexes(random.Random(SEED).sample(range(m), set_bits))
    return target


ATTACKS = {
    "pollution": lambda: PollutionAttack(_bloom(), seed=SEED),
    "ghost": lambda: GhostForgery(_bloom(), seed=SEED),
    "latency": lambda: LatencyQueryForgery(_bloom(), seed=SEED),
    "two_choice": lambda: TwoChoicePollutionAttack(_two_choice(), seed=SEED),
}


def _sequence(attack, path: str, count: int) -> list[tuple]:
    """``count`` crafted (item, indexes, trials) triples via one path."""
    craft = getattr(attack.engine, path)
    out = []
    for _ in range(count):
        result = craft(attack.predicate)
        out.append((result.item, tuple(result.indexes), result.trials))
    return out


# ----------------------------------------------------------------------
# The parity suite: every predicate, both accel modes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", sorted(ATTACKS))
def test_batched_sequence_matches_scalar(name: str, mode: str):
    """Seeded batched and scalar campaigns are item-for-item identical."""
    reference = _sequence(ATTACKS[name](), "craft_scalar", 6)
    with accel.use_mode(mode):
        batched = _sequence(ATTACKS[name](), "craft_batched", 6)
    assert batched == reference


@pytest.mark.parametrize("mode", MODES)
def test_auto_dispatch_matches_scalar(mode: str):
    """``craft()`` lands on whichever path the mode selects -- and the
    campaign cannot tell."""
    reference = _sequence(ATTACKS["ghost"](), "craft_scalar", 6)
    with accel.use_mode(mode):
        auto = _sequence(ATTACKS["ghost"](), "craft", 6)
    assert auto == reference


def test_two_choice_auto_dispatch_stays_scalar():
    """The pair derivation has no batch kernel, so numpy mode must not
    push the two-choice attack onto the batched path."""
    attack = ATTACKS["two_choice"]()
    assert attack.engine._batch_kernel is False
    if accel.numpy_or_none() is None:
        return
    with accel.use_mode("numpy"):
        attack.engine.craft(attack.predicate)
    assert attack.engine.carried == 0  # never pulled a block


def test_mixed_mode_engine_matches_scalar_campaign():
    """One engine alternating paths mid-campaign consumes the carried
    tail exactly where an all-scalar campaign would be."""
    reference = _sequence(ATTACKS["pollution"](), "craft_scalar", 6)
    attack = ATTACKS["pollution"]()
    mixed = []
    for index, path in enumerate(
        ["craft_batched", "craft_scalar", "craft_batched", "craft_scalar",
         "craft_scalar", "craft_batched"]
    ):
        mode = "numpy" if accel.numpy_or_none() is not None and index % 2 == 0 else "pure"
        with accel.use_mode(mode):
            result = getattr(attack.engine, path)(attack.predicate)
        mixed.append((result.item, tuple(result.indexes), result.trials))
    assert mixed == reference


# ----------------------------------------------------------------------
# Trial-accounting regressions: budgets and exhaustion, both paths
# ----------------------------------------------------------------------


def _spent(path: str, mode: str, purse: int) -> tuple[int, dict, int]:
    """Run a ghost campaign into a draining purse via one path."""
    budget = AttackBudget(max_trials=purse)
    target = _bloom()
    attack = GhostForgery(target, seed=SEED, budget=budget)
    craft = getattr(attack.engine, path)
    crafted = 0
    with accel.use_mode(mode):
        with pytest.raises(AttackBudgetExhausted) as excinfo:
            while True:
                craft(attack.predicate)
                crafted += 1
    spend = {k: (v.trials, v.requests) for k, v in budget.spend_by_label().items()}
    assert excinfo.value.trials >= 0
    assert budget.trials_spent == purse  # never over- or under-charged
    return crafted, spend, excinfo.value.trials


@pytest.mark.parametrize("mode", MODES)
def test_budget_drains_mid_block_with_scalar_spend(mode: str):
    """A purse draining mid-search raises AttackBudgetExhausted at the
    same crafted count, with the same final-search spend and the same
    per-label ledger, on both paths."""
    reference = _spent("craft_scalar", "pure", purse=700)
    assert _spent("craft_batched", mode, purse=700) == reference


@pytest.mark.parametrize("mode", MODES)
def test_max_trials_exhaustion_trials_match_scalar(mode: str):
    """CraftingBudgetExceeded carries the scalar trial count, and the
    stream position afterwards is identical (the next craft agrees)."""

    def run_impossible(path: str, with_mode: str) -> tuple[int, int, str]:
        target = _bloom()
        attack = GhostForgery(target, seed=SEED)
        engine = attack.engine
        engine.max_trials = 900
        predicate = _Impossible(attack.predicate)
        craft = getattr(engine, path)
        with accel.use_mode(with_mode):
            with pytest.raises(CraftingBudgetExceeded) as excinfo:
                craft(predicate)
            follow = engine.craft_scalar(lambda indexes: True)
        return excinfo.value.trials, engine.total_trials, follow.item

    reference = run_impossible("craft_scalar", "pure")
    assert run_impossible("craft_batched", mode) == reference
    assert reference[0] == 900


class _Impossible:
    """Mask-capable predicate that never accepts (exhaustion parity)."""

    def __init__(self, inner) -> None:
        self._inner = inner

    def __call__(self, indexes) -> bool:
        return False

    def snapshot(self):
        return self._inner.snapshot()

    def mask(self, matrix, state=None):
        np = accel.numpy_or_none()
        if np is not None and isinstance(matrix, np.ndarray):
            return np.zeros(len(matrix), dtype=bool)
        return [False] * len(matrix)


# ----------------------------------------------------------------------
# Hypothesis: parity over arbitrary filter bit states
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    bits=st.sets(st.integers(min_value=0, max_value=511), max_size=420),
    k=st.integers(min_value=2, max_value=6),
)
def test_parity_over_random_bit_states(bits: set[int], k: int):
    """Whatever the filter state -- empty, saturated, adversarial -- the
    batched path mirrors the scalar one: same crafted triples, or the
    same exhaustion at the same trial count."""

    def campaign(path: str, mode: str):
        target = BloomFilter(512, k)
        target.bits.set_indexes(sorted(bits))
        attack = GhostForgery(target, seed=SEED)
        attack.engine.max_trials = 1500
        craft = getattr(attack.engine, path)
        out = []
        with accel.use_mode(mode):
            for _ in range(3):
                try:
                    result = craft(attack.predicate)
                except CraftingBudgetExceeded as exc:
                    out.append(("exhausted", exc.trials))
                else:
                    out.append((result.item, tuple(result.indexes), result.trials))
        return out

    reference = campaign("craft_scalar", "pure")
    for mode in MODES:
        assert campaign("craft_batched", mode) == reference
