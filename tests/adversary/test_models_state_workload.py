"""Adversary models, state oracles, and workload builders."""

from __future__ import annotations

import pytest

from repro.adversary.models import (
    ALL_MODELS,
    CHOSEN_INSERTION,
    DELETION,
    QUERY_ONLY,
    AdversaryGoal,
)
from repro.adversary.state import bit_oracle
from repro.adversary.workload import (
    adversarial_insertions,
    honest_insertions,
    mixed_insertions,
)
from repro.core.bloom import BloomFilter
from repro.core.cache_digest import CacheDigest
from repro.core.counting import CountingBloomFilter
from repro.core.partitioned import PartitionedBloomFilter
from repro.exceptions import ParameterError


# --- models -----------------------------------------------------------------

def test_three_models_in_paper_order():
    assert [m.name for m in ALL_MODELS] == ["chosen-insertion", "query-only", "deletion"]


def test_capability_matrix():
    assert CHOSEN_INSERTION.can_insert and not CHOSEN_INSERTION.can_delete
    assert not QUERY_ONLY.can_insert and QUERY_ONLY.can_query
    assert DELETION.can_delete and not DELETION.can_insert


def test_goal_permissions():
    assert CHOSEN_INSERTION.permits(AdversaryGoal.POLLUTION)
    assert CHOSEN_INSERTION.permits(AdversaryGoal.SATURATION)
    assert not CHOSEN_INSERTION.permits(AdversaryGoal.FALSE_NEGATIVE)
    assert QUERY_ONLY.permits(AdversaryGoal.FALSE_POSITIVE)
    assert QUERY_ONLY.permits(AdversaryGoal.LATENCY)
    assert DELETION.permits(AdversaryGoal.FALSE_NEGATIVE)


# --- state oracle -----------------------------------------------------------

def test_oracle_bloom():
    bf = BloomFilter(64, 2)
    bf.add_indexes([5])
    oracle = bit_oracle(bf)
    assert oracle(5) and not oracle(6)


def test_oracle_counting():
    cbf = CountingBloomFilter(64, 2)
    cbf.add_indexes([9])
    oracle = bit_oracle(cbf)
    assert oracle(9) and not oracle(10)


def test_oracle_cache_digest():
    cd = CacheDigest(10)
    cd.add("http://a.example/")
    oracle = bit_oracle(cd)
    assert any(oracle(i) for i in cd.indexes("http://a.example/"))


def test_oracle_partitioned():
    pf = PartitionedBloomFilter(64, 2)
    pf.add("x")
    oracle = bit_oracle(pf)
    assert all(oracle(i) for i in pf.indexes("x"))


def test_oracle_duck_typed_adapter():
    class Shim:
        def __init__(self):
            self.bits = BloomFilter(16, 1).bits
            self.bits.set(3)

    oracle = bit_oracle(Shim())
    assert oracle(3) and not oracle(4)


def test_oracle_rejects_unknown():
    with pytest.raises(TypeError):
        bit_oracle(object())


# --- workloads --------------------------------------------------------------

def test_honest_trace_shape(small_filter):
    trace = honest_insertions(small_filter, 50, seed=3)
    assert len(trace.items) == len(trace.fpp) == len(trace.weight) == 50
    assert not any(trace.crafted)
    assert trace.weight[-1] == small_filter.hamming_weight


def test_adversarial_trace_weight_is_nk(small_filter):
    trace = adversarial_insertions(small_filter, 40, seed=4)
    assert all(trace.crafted)
    assert trace.weight[-1] == 40 * small_filter.k


def test_mixed_trace_concatenates(small_filter):
    trace = mixed_insertions(small_filter, honest_count=30, adversarial_count=20)
    assert len(trace.items) == 50
    assert trace.crafted[:30] == [False] * 30
    assert trace.crafted[30:] == [True] * 20


def test_threshold_crossing(small_filter):
    trace = adversarial_insertions(small_filter, 100, seed=9)
    crossing = trace.threshold_crossing(trace.fpp[49])
    assert crossing == 50 + 1  # first strictly-greater index
    assert trace.threshold_crossing(2.0) is None


def test_negative_counts_rejected(small_filter):
    with pytest.raises(ParameterError):
        honest_insertions(small_filter, -1)
    with pytest.raises(ParameterError):
        adversarial_insertions(small_filter, -1)
