"""Table 1 formulas and the feasibility ordering."""

from __future__ import annotations

import pytest

from repro.adversary.probabilities import (
    attack_ordering,
    deletion_overlap_probability,
    deletion_probability_paper,
    fp_forgery_bounds,
    second_preimage_bloom,
    second_preimage_hash,
)
from repro.exceptions import ParameterError


def test_second_preimage_hash():
    assert second_preimage_hash(160) == 2.0**-160
    assert second_preimage_hash(32) == 2.0**-32
    with pytest.raises(ParameterError):
        second_preimage_hash(0)


def test_second_preimage_bloom_much_easier_than_hash():
    # Only k*log2(m) digest bits matter: 1/m^k >> 2^-l.
    bloom = second_preimage_bloom(3200, 4)
    assert bloom == pytest.approx(3200.0**-4)
    assert bloom > second_preimage_hash(160) * 1e20


def test_fp_forgery_bounds_bracket_the_rate():
    lower, upper = fp_forgery_bounds(3200, 4)
    assert lower == pytest.approx((4 / 3200) ** 4)
    assert upper == 0.5**4
    from repro.adversary.query import false_positive_success_probability

    for weight in (4, 800, 1600):
        rate = false_positive_success_probability(3200, weight, 4)
        assert lower <= rate <= upper + 1e-12


def test_deletion_paper_formula_verbatim():
    # Reproduced exactly as printed -- it exceeds 1 for k > 1.
    value = deletion_probability_paper(3200, 4)
    assert value > 1.0
    assert value == pytest.approx(
        sum(
            __import__("math").comb(4, i) * (3200 - i) ** 4 for i in range(1, 5)
        )
        / 3200**4
    )


def test_deletion_paper_formula_is_probability_for_k1():
    value = deletion_probability_paper(3200, 1)
    assert 0 < value < 1
    assert value == pytest.approx((3200 - 1) / 3200)


def test_deletion_overlap_probability():
    p = deletion_overlap_probability(3200, 4)
    assert p == pytest.approx(1 - ((3200 - 4) / 3200) ** 4)
    assert 0 < p < 1
    with pytest.raises(ParameterError):
        deletion_overlap_probability(4, 4)


def test_ordering_matches_paper_low_occupancy():
    # Early in the filter's life: pollution easiest, deletion hardest.
    ranked = attack_ordering(3200, 4, weight=400)
    names = [name for name, _ in ranked]
    assert names[0] == "pollution"
    assert names[-1] == "deletion"


def test_ordering_probabilities_are_sorted():
    ranked = attack_ordering(3200, 4, weight=1000)
    values = [p for _, p in ranked]
    assert values == sorted(values, reverse=True)


def test_forgery_overtakes_pollution_past_half_full():
    # The crossover: once W > m/2, forging FPs becomes easier than polluting.
    ranked = attack_ordering(3200, 4, weight=2400)
    assert ranked[0][0] == "false-positive forgery"
