"""Counter-overflow attack: the nk = a + 16b wipe (paper Section 6.2)."""

from __future__ import annotations

import pytest

from repro.adversary.overflow import CounterOverflowAttack, plan_overflow
from repro.core.counters import OverflowPolicy
from repro.core.counting import CountingBloomFilter
from repro.exceptions import ParameterError
from repro.hashing.kirsch_mitzenmacher import KirschMitzenmacherStrategy
from repro.hashing.murmur import murmur3_x64_128


def test_plan_residue_matches_paper_arithmetic():
    # nk = a + 16b: the residue counter ends at a = nk mod 16.
    plan = plan_overflow(n=100, k=7)
    assert plan.total_items == 100
    assert plan.residue_value == (100 * 7) % 16
    # Full groups of 16 items (16*7 = 112 = 7*16 increments ≡ 0 mod 16).
    full_groups = [c for c, t in plan.assignments.items() if t == 16]
    assert len(full_groups) == 6


def test_plan_exact_wipe_when_divisible():
    plan = plan_overflow(n=64, k=7)  # 64*7 = 448 = 28*16
    assert plan.residue_value == 0


def test_plan_respects_filter_size():
    with pytest.raises(ParameterError):
        plan_overflow(n=10_000, k=1, counter_bits=4, m=4)


def test_plan_validation():
    with pytest.raises(ParameterError):
        plan_overflow(0, 7)
    with pytest.raises(ParameterError):
        plan_overflow(10, 7, counter_bits=0)


def test_forged_key_hits_single_counter(dablooms_slice):
    attack = CounterOverflowAttack(dablooms_slice)
    key = attack.forge_key(counter=17, variant=3)
    indexes = dablooms_slice.indexes(key)
    assert set(indexes) == {17}
    h1, h2 = murmur3_x64_128(key, 0)
    assert h2 == 0 and h1 % dablooms_slice.m == 17


def test_forged_keys_are_distinct(dablooms_slice):
    attack = CounterOverflowAttack(dablooms_slice)
    keys = {attack.forge_key(5, v) for v in range(20)}
    assert len(keys) == 20


def test_forge_key_validation(dablooms_slice):
    attack = CounterOverflowAttack(dablooms_slice)
    with pytest.raises(ParameterError):
        attack.forge_key(dablooms_slice.m, 0)  # out of range
    with pytest.raises(ParameterError):
        attack.forge_key(0, 2**60)  # h1 would overflow 64 bits


def test_full_wipe(dablooms_slice):
    attack = CounterOverflowAttack(dablooms_slice)
    report = attack.run(64)  # 64 * 7 increments ≡ 0 mod 16
    assert report.items_inserted == 64
    assert report.nonzero_counters_after == 0
    assert report.wiped
    assert report.lost_keys == 64  # nothing inserted is found again
    assert len(dablooms_slice) == 64  # yet the filter believes it is filling


def test_partial_wipe_leaves_residue(dablooms_slice):
    attack = CounterOverflowAttack(dablooms_slice)
    report = attack.run(100)  # residue a = 700 mod 16 = 12
    assert report.nonzero_counters_after == 1
    assert report.wiped
    assert report.overflow_events > 0


def test_requires_km_strategy():
    plain = CountingBloomFilter(100, 4, overflow=OverflowPolicy.WRAP)
    with pytest.raises(ParameterError):
        CounterOverflowAttack(plain)


def test_requires_wrapping_counters():
    saturating = CountingBloomFilter(
        100, 4, strategy=KirschMitzenmacherStrategy(), overflow=OverflowPolicy.SATURATE
    )
    with pytest.raises(ParameterError):
        CounterOverflowAttack(saturating)


def test_requires_block_aligned_prefix(dablooms_slice):
    with pytest.raises(ParameterError):
        CounterOverflowAttack(dablooms_slice, prefix=b"http://evil.ex/")  # 15 bytes


def test_saturating_counters_defeat_the_attack():
    # Ablation: with SATURATE the same forged keys cannot wipe anything.
    target = CountingBloomFilter(
        958, 7, strategy=KirschMitzenmacherStrategy(), counter_bits=4,
        overflow=OverflowPolicy.WRAP,
    )
    attack = CounterOverflowAttack(target)
    keys = [attack.forge_key(5, v) for v in range(16)]

    saturating = CountingBloomFilter(
        958, 7, strategy=KirschMitzenmacherStrategy(), counter_bits=4,
        overflow=OverflowPolicy.SATURATE,
    )
    for key in keys:
        saturating.add(key)
    assert saturating.counters.get(5) == 15  # pinned at max, still present
    assert all(key in saturating for key in keys)
