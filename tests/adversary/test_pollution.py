"""Pollution attack: eq. (6) crafting, weight inflation, Fig. 3 numbers."""

from __future__ import annotations

import math

import pytest

from repro.adversary.pollution import (
    PollutionAttack,
    expected_pollution_trials,
    pollution_success_probability,
)
from repro.core.bloom import BloomFilter
from repro.core.counting import CountingBloomFilter
from repro.exceptions import ParameterError


def test_each_crafted_item_sets_k_fresh_bits(small_filter):
    attack = PollutionAttack(small_filter)
    report = attack.run(30)
    assert report.weight_after == 30 * small_filter.k
    assert report.weight_before == 0


def test_crafted_indexes_satisfy_eq6(small_filter):
    attack = PollutionAttack(small_filter)
    result = attack.craft_one()
    assert len(set(result.indexes)) == small_filter.k
    assert not any(small_filter.bits.get(i) for i in result.indexes)


def test_fpp_curve_matches_nk_over_m(small_filter):
    attack = PollutionAttack(small_filter)
    report = attack.run(25)
    for i, fpp in enumerate(report.fpp_curve, start=1):
        assert fpp == pytest.approx((i * small_filter.k / small_filter.m) ** small_filter.k)


def test_attack_beats_honest_expectation(small_filter):
    attack = PollutionAttack(small_filter)
    attack.run(100)
    honest_weight = small_filter.m * (1 - math.exp(-100 * 4 / small_filter.m))
    assert small_filter.hamming_weight > honest_weight


def test_run_without_insert_returns_items_only(small_filter):
    attack = PollutionAttack(small_filter)
    report = attack.run(5, insert=False)
    assert small_filter.hamming_weight == 0
    assert len(report.items) == 5


def test_works_on_counting_filter():
    cbf = CountingBloomFilter(1000, 3)
    attack = PollutionAttack(cbf)
    attack.run(20)
    assert cbf.hamming_weight == 60


def test_free_insertions_matches_birthday(small_filter):
    attack = PollutionAttack(small_filter)
    assert attack.free_insertions() == math.ceil(math.sqrt(3200) / 4)


def test_report_totals(small_filter):
    attack = PollutionAttack(small_filter)
    report = attack.run(10)
    assert report.total_trials == sum(r.trials for r in report.crafted)
    assert len(report.items) == 10


def test_success_probability_paper_vs_ordered():
    paper = pollution_success_probability(3200, 400, 4, paper_formula=True)
    ordered = pollution_success_probability(3200, 400, 4, paper_formula=False)
    assert ordered == pytest.approx(paper * math.factorial(4))


def test_success_probability_zero_when_no_room():
    assert pollution_success_probability(100, 98, 4) == 0.0
    assert expected_pollution_trials(100, 98, 4) == math.inf


def test_success_probability_validation():
    with pytest.raises(ParameterError):
        pollution_success_probability(0, 0, 4)
    with pytest.raises(ParameterError):
        pollution_success_probability(100, 101, 4)


def test_trials_grow_as_filter_fills(small_filter):
    attack = PollutionAttack(small_filter)
    early = attack.run(50).total_trials / 50
    # Push the filter much fuller, then measure again.
    attack.run(500)
    late_report = attack.run(25)
    late = late_report.total_trials / 25
    assert late > early


def test_fig3_threshold_crossed_at_422(small_filter):
    # Analytic: (nk/m)^k > 0.077 first at n = 422.
    attack = PollutionAttack(small_filter)
    report = attack.run(430)
    crossing = next(
        i + 1 for i, f in enumerate(report.fpp_curve) if f > 0.077
    )
    assert crossing == 422
