"""Probabilistic counters (repro.counting): accuracy and attacks."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.counting import (
    HllEvasionAttack,
    HllInflationAttack,
    HyperLogLog,
    LinearCounter,
    LinearCounterSaturation,
    alpha,
    rho,
)
from repro.exceptions import ParameterError
from repro.hashing.siphash import siphash24
from repro.urlgen.faker import UrlFactory


# --- primitives -------------------------------------------------------------

def test_rho_values():
    assert rho(0, 16) == 17  # all zeros convention
    assert rho(1 << 15, 16) == 1  # leading bit set
    assert rho(1, 16) == 16
    assert rho(0b0001_0000_0000_0000, 16) == 4


def test_alpha_constants():
    assert alpha(16) == 0.673
    assert alpha(32) == 0.697
    assert alpha(64) == 0.709
    assert alpha(1024) == pytest.approx(0.7213 / (1 + 1.079 / 1024))


# --- HyperLogLog ------------------------------------------------------------

def test_hll_accuracy_within_design_error():
    hll = HyperLogLog(p=11)
    true_n = 10_000
    for url in UrlFactory(seed=1).urls(true_n):
        hll.add(url)
    estimate = hll.estimate()
    assert abs(estimate - true_n) / true_n < 4 * hll.relative_error()


def test_hll_duplicates_do_not_inflate():
    hll = HyperLogLog(p=10)
    for _ in range(1000):
        hll.add("same-item")
    assert hll.estimate() < 3  # one distinct item
    assert len(hll) == 1000


def test_hll_small_range_correction():
    hll = HyperLogLog(p=10)
    for url in UrlFactory(seed=2).urls(20):
        hll.add(url)
    assert abs(hll.estimate() - 20) < 8


def test_hll_placement_is_public_and_stable():
    hll = HyperLogLog(p=8)
    assert hll.placement("item") == hll.placement("item")
    register, r = hll.placement("item")
    assert 0 <= register < hll.m
    assert 1 <= r <= 64 - 8 + 1


def test_hll_merge_is_union():
    a = HyperLogLog(p=10)
    b = HyperLogLog(p=10)
    urls = UrlFactory(seed=3).urls(4000)
    for url in urls[:2500]:
        a.add(url)
    for url in urls[1500:]:
        b.add(url)
    merged = a.merge(b)
    assert abs(merged.estimate() - 4000) / 4000 < 4 * merged.relative_error()
    with pytest.raises(ParameterError):
        a.merge(HyperLogLog(p=11))


def test_hll_precision_bounds():
    with pytest.raises(ParameterError):
        HyperLogLog(p=3)
    with pytest.raises(ParameterError):
        HyperLogLog(p=19)


def test_hll_keyed_hash_variant():
    key = bytes(range(16))
    hll = HyperLogLog(p=10, hash64=lambda data: siphash24(key, data))
    for url in UrlFactory(seed=4).urls(3000):
        hll.add(url)
    assert abs(hll.estimate() - 3000) / 3000 < 5 * hll.relative_error()


@settings(max_examples=20)
@given(st.integers(min_value=4, max_value=12))
def test_hll_empty_estimate_is_zero(p):
    assert HyperLogLog(p=p).estimate() == 0.0


# --- linear counting --------------------------------------------------------

def test_linear_counter_accuracy():
    lc = LinearCounter(8192)
    for url in UrlFactory(seed=5).urls(2000):
        lc.add(url)
    assert abs(lc.estimate() - 2000) / 2000 < 0.1


def test_linear_counter_duplicates():
    lc = LinearCounter(1024)
    for _ in range(500):
        lc.add("dup")
    assert lc.estimate() == pytest.approx(-1024 * math.log(1023 / 1024))


def test_linear_counter_validation():
    with pytest.raises(ParameterError):
        LinearCounter(0)


# --- attacks ----------------------------------------------------------------

def test_inflation_forged_key_hits_exact_placement():
    hll = HyperLogLog(p=10)
    attack = HllInflationAttack(hll)
    key = attack.forge_key(register=5, rho_value=30)
    assert hll.placement(key) == (5, 30)


def test_inflation_explodes_the_estimate():
    hll = HyperLogLog(p=8)
    for url in UrlFactory(seed=6).urls(100):
        hll.add(url)
    report = HllInflationAttack(hll).run()
    assert report.items_inserted == hll.m
    assert report.estimate_after > 1e12  # a few hundred items look like trillions
    assert report.inflation_factor > 1e9


def test_partial_inflation_is_tunable():
    # Pinning only a few registers stays inside the small-range (linear
    # counting) correction; enough pinned registers escape it and the
    # attacker can dial in intermediate fake cardinalities.
    few = HllInflationAttack(HyperLogLog(p=8)).run(registers=32, rho_value=20)
    assert few.estimate_after < 100  # correction still active

    many = HllInflationAttack(HyperLogLog(p=8)).run(registers=200, rho_value=20)
    assert 500 < many.estimate_after < 1e6  # past the correction, tunable

    full = HllInflationAttack(HyperLogLog(p=8)).run()
    assert full.estimate_after > many.estimate_after


def test_inflation_validation():
    hll = HyperLogLog(p=8)
    attack = HllInflationAttack(hll)
    with pytest.raises(ParameterError):
        attack.forge_key(register=hll.m, rho_value=5)
    with pytest.raises(ParameterError):
        attack.forge_key(register=0, rho_value=0)
    with pytest.raises(ParameterError):
        attack.run(registers=0)


def test_evasion_hides_distinct_items():
    hll = HyperLogLog(p=10)
    report = HllEvasionAttack(hll).run(2000)
    assert report.distinct_items_inserted == 2000
    assert report.estimate_after < 5  # thousands of items, cardinality ~1
    assert report.evasion_factor > 400


def test_evasion_keys_are_distinct():
    attack = HllEvasionAttack(HyperLogLog(p=10))
    keys = {attack.forge_key(v) for v in range(100)}
    assert len(keys) == 100


def test_evasion_validation():
    hll = HyperLogLog(p=8)
    with pytest.raises(ParameterError):
        HllEvasionAttack(hll, register=hll.m)
    with pytest.raises(ParameterError):
        HllEvasionAttack(hll).run(0)


def test_linear_saturation_destroys_estimator():
    lc = LinearCounter(256)
    attack = LinearCounterSaturation(lc)
    assert attack.theoretical_items() == 256
    assert attack.run() == math.inf


def test_keyed_hll_defeats_inflation_forgery():
    # The forged keys were crafted against murmur(seed 0); under SipHash
    # they land on effectively random placements.
    key = bytes(range(16))
    keyed = HyperLogLog(p=8, hash64=lambda data: siphash24(key, data))
    reference = HyperLogLog(p=8)
    attack = HllInflationAttack(reference)
    for register in range(reference.m):
        keyed.add(attack.forge_key(register, 56))
    # 256 forged keys behave like 256 random items, not like 2^56 each.
    assert keyed.estimate() < 1000
