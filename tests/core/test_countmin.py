"""Count-Min sketch: estimator guarantees and the collision attack."""

from __future__ import annotations

import pytest

from repro.counting import CountMinInflationAttack, CountMinSketch
from repro.exceptions import ParameterError
from repro.hashing.siphash import siphash24
from repro.urlgen.faker import UrlFactory


def test_never_underestimates():
    sketch = CountMinSketch(width=256, depth=4)
    truth: dict[str, int] = {}
    factory = UrlFactory(seed=1)
    urls = factory.urls(50)
    for i, url in enumerate(urls):
        count = (i % 5) + 1
        sketch.add(url, count)
        truth[url] = count
    for url, count in truth.items():
        assert sketch.estimate(url) >= count


def test_reasonable_accuracy_when_sparse():
    sketch = CountMinSketch(width=2048, depth=5)
    for url in UrlFactory(seed=2).urls(200):
        sketch.add(url)
    # A sparse sketch should estimate most singletons exactly.
    exact = sum(1 for url in UrlFactory(seed=2).urls(200) if sketch.estimate(url) == 1)
    assert exact > 150


def test_unseen_items_mostly_zero():
    sketch = CountMinSketch(width=2048, depth=5)
    for url in UrlFactory(seed=3).urls(100):
        sketch.add(url)
    zeros = sum(1 for url in UrlFactory(seed=4).urls(100) if sketch.estimate(url) == 0)
    assert zeros > 80


def test_total_and_validation():
    sketch = CountMinSketch(width=16, depth=2)
    sketch.add("a", 3)
    assert len(sketch) == 3
    with pytest.raises(ParameterError):
        sketch.add("a", 0)
    with pytest.raises(ParameterError):
        CountMinSketch(0, 2)
    with pytest.raises(ParameterError):
        CountMinSketch(16, 0)


def test_forged_key_collides_in_every_row():
    sketch = CountMinSketch(width=512, depth=6)
    attack = CountMinInflationAttack(sketch)
    victim = "10.0.0.7:443"
    forged = attack.forge_colliding_key(victim, variant=1)
    assert forged != victim.encode()
    assert sketch.indexes(forged) == sketch.indexes(victim)


def test_forged_keys_are_distinct():
    attack = CountMinInflationAttack(CountMinSketch(512, 4))
    keys = {attack.forge_colliding_key("victim-flow", v) for v in range(1, 40)}
    assert len(keys) == 39


def test_inflation_frames_a_quiet_flow():
    sketch = CountMinSketch(width=1024, depth=5)
    victim = "10.0.0.7:443"
    sketch.add(victim, 2)  # genuinely quiet
    for url in UrlFactory(seed=5).urls(300):
        sketch.add(url)

    report = CountMinInflationAttack(sketch).run(victim, forged_items=500)
    assert report.estimate_after >= 502  # 2 true + 500 forged
    assert report.inflation >= 500
    # min-over-rows cannot dodge: every row was hit.


def test_keyed_sketch_defeats_the_forgery():
    key = bytes(range(16))

    def keyed_pair(data: bytes) -> tuple[int, int]:
        return (
            siphash24(key, b"\x00" + data),
            siphash24(key, b"\x01" + data),
        )

    keyed = CountMinSketch(width=1024, depth=5, pair_fn=keyed_pair)
    victim = "10.0.0.7:443"
    keyed.add(victim, 2)
    # Forge against the keyless model, insert into the keyed sketch.
    forger = CountMinInflationAttack(CountMinSketch(1024, 5))
    for variant in range(1, 301):
        keyed.add(forger.forge_colliding_key(victim, variant))
    # 300 random-looking items cannot pile onto the victim's min.
    assert keyed.estimate(victim) < 20


def test_run_validation():
    attack = CountMinInflationAttack(CountMinSketch(64, 2))
    with pytest.raises(ParameterError):
        attack.run("x", 0)
