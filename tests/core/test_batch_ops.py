"""The batch membership API on every filter family.

``MembershipFilter`` ships default ``add_batch``/``contains_batch``
loops; ``BloomFilter`` overrides them with vectorized single-pass forms.
Either way the contract is the same: a batch call must be exactly
equivalent to the per-item loop, for every structure in the package.
"""

from __future__ import annotations

import pytest

from repro.core.bloom import BloomFilter
from repro.core.cache_digest import CacheDigest
from repro.core.counting import CountingBloomFilter
from repro.core.dablooms import Dablooms
from repro.core.partitioned import PartitionedBloomFilter
from repro.core.scalable import ScalableBloomFilter
from repro.core.two_choice import TwoChoiceBloomFilter
from repro.countermeasures.keyed import KeyedBloomFilter
from repro.urlgen.faker import UrlFactory

FACTORIES = {
    "bloom": lambda: BloomFilter(2048, 4),
    "keyed": lambda: KeyedBloomFilter(2048, 4, key=bytes(range(16))),
    "counting": lambda: CountingBloomFilter(2048, 4),
    "partitioned": lambda: PartitionedBloomFilter(2048, 4),
    "two-choice": lambda: TwoChoiceBloomFilter(2048, 4),
    "scalable": lambda: ScalableBloomFilter(64, 0.01),
    "dablooms": lambda: Dablooms(64),
    "cache-digest": lambda: CacheDigest(capacity=300),
}

ITEMS = UrlFactory(seed=0xBA7C).urls(120)
PROBES = ITEMS[:40] + UrlFactory(seed=0x9999).urls(200)


@pytest.mark.parametrize("family", FACTORIES, ids=list(FACTORIES))
def test_add_batch_equals_scalar_add(family):
    scalar, batch = FACTORIES[family](), FACTORIES[family]()
    expected = [scalar.add(item) for item in ITEMS]
    assert batch.add_batch(ITEMS) == expected
    assert len(batch) == len(scalar) == len(ITEMS)
    assert [item in batch for item in PROBES] == [item in scalar for item in PROBES]


@pytest.mark.parametrize("family", FACTORIES, ids=list(FACTORIES))
def test_contains_batch_equals_scalar_contains(family):
    target = FACTORIES[family]()
    target.add_batch(ITEMS[:60])
    assert target.contains_batch(PROBES) == [item in target for item in PROBES]
    # Inserted items are always reported present (no false negatives).
    assert all(target.contains_batch(ITEMS[:60]))


@pytest.mark.parametrize("family", FACTORIES, ids=list(FACTORIES))
def test_empty_batches(family):
    target = FACTORIES[family]()
    assert target.add_batch([]) == []
    assert target.contains_batch([]) == []
    assert len(target) == 0


@pytest.mark.parametrize(
    "m,k,salt",
    [
        (2048, 4, b""),  # power-of-two fast path (mask-only reduction)
        (3000, 4, b""),  # non-power-of-two: the `% m` branch
        (3000, 4, b"s"),  # salted: falls back to the scalar path
        (97, 8, b""),  # tiny m, window far narrower than the digest
    ],
)
def test_recycling_batch_indexes_match_scalar(m, k, salt):
    from repro.hashing.crypto import SHA512
    from repro.hashing.recycling import RecyclingStrategy

    strategy = RecyclingStrategy(SHA512(), salt=salt)
    items = ITEMS[:40]
    assert strategy.batch_indexes(items, k, m) == [
        strategy.indexes(item, k, m) for item in items
    ]


def test_recycling_batch_multi_call_fallback_matches_scalar():
    # 64-bit digest, m=4096 -> 12-bit windows, 5 per call: k=9 needs a
    # second salted call, forcing the multi-call fallback in batch_indexes.
    from repro.hashing.recycling import RecyclingStrategy
    from repro.hashing.siphash import SipHash24

    strategy = RecyclingStrategy(SipHash24(bytes(16)))
    items = ITEMS[:40]
    assert strategy.batch_indexes(items, 9, 4096) == [
        strategy.indexes(item, 9, 4096) for item in items
    ]


def test_bloom_batch_accepts_bytes_and_str():
    target = BloomFilter(1024, 3)
    target.add_batch(["http://a.example", b"http://b.example"])
    # str/bytes spellings of the same item hit the same bits.
    assert target.contains_batch([b"http://a.example", "http://b.example"]) == [
        True,
        True,
    ]


def test_bloom_add_batch_maintains_weight_and_fpp():
    scalar, batch = BloomFilter(4096, 4), BloomFilter(4096, 4)
    for item in ITEMS:
        scalar.add(item)
    batch.add_batch(ITEMS)
    assert batch.hamming_weight == scalar.hamming_weight
    assert batch.current_fpp() == scalar.current_fpp()
    assert batch.to_bytes() == scalar.to_bytes()


def test_bloom_add_batch_already_present_convention():
    target = BloomFilter(2048, 4)
    first = target.add_batch(["x", "y", "x"])
    # Third insert repeats the first item: every index already set.
    assert first == [False, False, True]
    assert target.add_batch(["x", "y"]) == [True, True]
