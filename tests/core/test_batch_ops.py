"""The batch membership API on every filter family.

``MembershipFilter`` ships default ``add_batch``/``contains_batch``
loops; ``BloomFilter`` overrides them with vectorized single-pass forms.
Either way the contract is the same: a batch call must be exactly
equivalent to the per-item loop, for every structure in the package.
"""

from __future__ import annotations

import pytest

from repro.core.bloom import BloomFilter
from repro.core.cache_digest import CacheDigest
from repro.core.counting import CountingBloomFilter
from repro.core.dablooms import Dablooms
from repro.core.partitioned import PartitionedBloomFilter
from repro.core.scalable import ScalableBloomFilter
from repro.core.two_choice import TwoChoiceBloomFilter
from repro.countermeasures.keyed import KeyedBloomFilter
from repro.urlgen.faker import UrlFactory

FACTORIES = {
    "bloom": lambda: BloomFilter(2048, 4),
    "keyed": lambda: KeyedBloomFilter(2048, 4, key=bytes(range(16))),
    "counting": lambda: CountingBloomFilter(2048, 4),
    "partitioned": lambda: PartitionedBloomFilter(2048, 4),
    "two-choice": lambda: TwoChoiceBloomFilter(2048, 4),
    "scalable": lambda: ScalableBloomFilter(64, 0.01),
    "dablooms": lambda: Dablooms(64),
    "cache-digest": lambda: CacheDigest(capacity=300),
}

ITEMS = UrlFactory(seed=0xBA7C).urls(120)
PROBES = ITEMS[:40] + UrlFactory(seed=0x9999).urls(200)


@pytest.mark.parametrize("family", FACTORIES, ids=list(FACTORIES))
def test_add_batch_equals_scalar_add(family):
    scalar, batch = FACTORIES[family](), FACTORIES[family]()
    expected = [scalar.add(item) for item in ITEMS]
    assert batch.add_batch(ITEMS) == expected
    assert len(batch) == len(scalar) == len(ITEMS)
    assert [item in batch for item in PROBES] == [item in scalar for item in PROBES]


@pytest.mark.parametrize("family", FACTORIES, ids=list(FACTORIES))
def test_contains_batch_equals_scalar_contains(family):
    target = FACTORIES[family]()
    target.add_batch(ITEMS[:60])
    assert target.contains_batch(PROBES) == [item in target for item in PROBES]
    # Inserted items are always reported present (no false negatives).
    assert all(target.contains_batch(ITEMS[:60]))


@pytest.mark.parametrize("family", FACTORIES, ids=list(FACTORIES))
def test_empty_batches(family):
    target = FACTORIES[family]()
    assert target.add_batch([]) == []
    assert target.contains_batch([]) == []
    assert len(target) == 0


@pytest.mark.parametrize(
    "m,k,salt",
    [
        (2048, 4, b""),  # power-of-two fast path (mask-only reduction)
        (3000, 4, b""),  # non-power-of-two: the `% m` branch
        (3000, 4, b"s"),  # salted: falls back to the scalar path
        (97, 8, b""),  # tiny m, window far narrower than the digest
    ],
)
def test_recycling_batch_indexes_match_scalar(m, k, salt):
    from repro.hashing.crypto import SHA512
    from repro.hashing.recycling import RecyclingStrategy

    strategy = RecyclingStrategy(SHA512(), salt=salt)
    items = ITEMS[:40]
    assert strategy.batch_indexes(items, k, m) == [
        strategy.indexes(item, k, m) for item in items
    ]


def test_recycling_batch_multi_call_fallback_matches_scalar():
    # 64-bit digest, m=4096 -> 12-bit windows, 5 per call: k=9 needs a
    # second salted call, forcing the multi-call fallback in batch_indexes.
    from repro.hashing.recycling import RecyclingStrategy
    from repro.hashing.siphash import SipHash24

    strategy = RecyclingStrategy(SipHash24(bytes(16)))
    items = ITEMS[:40]
    assert strategy.batch_indexes(items, 9, 4096) == [
        strategy.indexes(item, 9, 4096) for item in items
    ]


DELETABLE = {
    "counting": FACTORIES["counting"],
    "dablooms": FACTORIES["dablooms"],
}


@pytest.mark.parametrize("family", DELETABLE, ids=list(DELETABLE))
def test_remove_batch_equals_scalar_remove(family):
    scalar, batch = DELETABLE[family](), DELETABLE[family]()
    scalar.add_batch(ITEMS[:80])
    batch.add_batch(ITEMS[:80])
    victims = ITEMS[40:100]  # half present, half never inserted
    expected = [scalar.remove(item) for item in victims]
    assert batch.remove_batch(victims) == expected
    assert [item in batch for item in PROBES] == [item in scalar for item in PROBES]


def test_counting_batch_preserves_counter_values_and_events():
    from repro.core.counters import OverflowPolicy

    scalar = CountingBloomFilter(512, 4, counter_bits=4, overflow=OverflowPolicy.WRAP)
    batch = CountingBloomFilter(512, 4, counter_bits=4, overflow=OverflowPolicy.WRAP)
    # Hammer a small filter so counters overflow and wrap (the Section
    # 6.2 precondition): batch and scalar must wrap identically.
    stream = ITEMS * 6
    for item in stream:
        scalar.add(item)
    batch.add_batch(stream)
    assert batch.counters.values() == scalar.counters.values()
    assert batch.overflow_events == scalar.overflow_events
    for item in ITEMS[:30]:
        scalar.remove(item)
    batch.remove_batch(ITEMS[:30])
    assert batch.counters.values() == scalar.counters.values()
    assert batch.counters.underflow_events == scalar.counters.underflow_events
    assert batch.deletions == scalar.deletions


def test_counting_batch_raise_policy_aborts_like_scalar():
    from repro.core.counters import OverflowPolicy
    from repro.exceptions import CounterOverflowError

    # Narrow 1-bit counters overflow on the first repeated item.
    scalar = CountingBloomFilter(2048, 4, counter_bits=1, overflow=OverflowPolicy.RAISE)
    with pytest.raises(CounterOverflowError):
        for item in ITEMS[:10] + ITEMS[:10]:
            scalar.add(item)
    batch = CountingBloomFilter(2048, 4, counter_bits=1, overflow=OverflowPolicy.RAISE)
    with pytest.raises(CounterOverflowError):
        batch.add_batch(ITEMS[:10] + ITEMS[:10])
    # A mid-batch abort leaves the insertion count where the scalar
    # loop's abort left it -- items before the overflow are counted.
    assert len(batch) == len(scalar)


def test_counting_batch_sequential_parity_within_one_batch():
    # The second occurrence of an item inside one batch must see the
    # first occurrence's increments -- exactly like the scalar loop.
    scalar, batch = CountingBloomFilter(2048, 4), CountingBloomFilter(2048, 4)
    stream = ["x", "y", "x", "z", "y", "x"]
    assert batch.add_batch(stream) == [scalar.add(i) for i in stream]
    assert batch.add_batch(stream) == [True] * 6


def test_dablooms_batch_grows_slices_like_scalar():
    scalar, batch = Dablooms(64), Dablooms(64)
    stream = UrlFactory(seed=0xD00B).urls(300)  # spans 5 slices
    expected = [scalar.add(item) for item in stream]
    assert batch.add_batch(stream) == expected
    assert batch.slice_count == scalar.slice_count == 5
    for i in range(batch.slice_count):
        assert batch.slice_fill(i) == scalar.slice_fill(i)
        assert (
            batch.slices[i].counters.values() == scalar.slices[i].counters.values()
        )
    assert batch.compound_fpp() == scalar.compound_fpp()
    # Per-slice grouped contains_batch consults every slice.
    probes = stream[:50] + UrlFactory(seed=0x0DD).urls(100)
    assert batch.contains_batch(probes) == [item in scalar for item in probes]


def test_bloom_batch_accepts_bytes_and_str():
    target = BloomFilter(1024, 3)
    target.add_batch(["http://a.example", b"http://b.example"])
    # str/bytes spellings of the same item hit the same bits.
    assert target.contains_batch([b"http://a.example", "http://b.example"]) == [
        True,
        True,
    ]


def test_bloom_add_batch_maintains_weight_and_fpp():
    scalar, batch = BloomFilter(4096, 4), BloomFilter(4096, 4)
    for item in ITEMS:
        scalar.add(item)
    batch.add_batch(ITEMS)
    assert batch.hamming_weight == scalar.hamming_weight
    assert batch.current_fpp() == scalar.current_fpp()
    assert batch.to_bytes() == scalar.to_bytes()


def test_bloom_add_batch_already_present_convention():
    target = BloomFilter(2048, 4)
    first = target.add_batch(["x", "y", "x"])
    # Third insert repeats the first item: every index already set.
    assert first == [False, False, True]
    assert target.add_batch(["x", "y"]) == [True, True]
