"""CountingBloomFilter: deletion semantics, overflow policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.counters import OverflowPolicy
from repro.core.counting import CountingBloomFilter
from repro.exceptions import ParameterError


def test_add_remove_round_trip(counting_filter):
    counting_filter.add("x")
    assert "x" in counting_filter
    assert counting_filter.remove("x") is True
    assert "x" not in counting_filter


def test_remove_absent_item_reports_false(counting_filter):
    assert counting_filter.remove("never-inserted") is False
    assert counting_filter.deletions == 1


def test_duplicate_insertions_survive_single_removal(counting_filter):
    counting_filter.add("dup")
    counting_filter.add("dup")
    counting_filter.remove("dup")
    assert "dup" in counting_filter  # counted twice, removed once
    counting_filter.remove("dup")
    assert "dup" not in counting_filter


def test_removing_absent_item_can_create_false_negatives():
    # The deletion-adversary mechanism: removing an item that merely
    # *appears* present decrements a victim's counters.
    cbf = CountingBloomFilter(8, 2)  # tiny filter forces overlaps
    for i in range(6):
        cbf.add(f"legit-{i}")
    victims_before = [f"legit-{i}" for i in range(6) if f"legit-{i}" in cbf]
    for probe in range(200):
        item = f"probe-{probe}"
        if item in cbf and not any(item == v for v in victims_before):
            cbf.remove(item)
    lost = [v for v in victims_before if v not in cbf]
    # At this size collateral loss is essentially guaranteed.
    assert lost


def test_underflow_is_tracked():
    cbf = CountingBloomFilter(64, 2)
    cbf.remove("ghost")  # decrements zero counters
    assert cbf.counters.underflow_events > 0


def test_wrap_overflow_erases_membership(dablooms_slice):
    # 16 single-target increments of a 4-bit counter wrap it to zero.
    target = dablooms_slice
    # Simulate k hits on one counter per item via add_indexes.
    for _ in range(16):
        target.add_indexes([5])
    assert target.counters.get(5) == 0
    assert target.overflow_events >= 1


def test_saturate_overflow_keeps_membership():
    cbf = CountingBloomFilter(32, 1, counter_bits=2, overflow=OverflowPolicy.SATURATE)
    for _ in range(10):
        cbf.add_indexes([3])
    assert cbf.counters.get(3) == 3  # stuck at max, still non-zero


def test_weight_and_fill(counting_filter):
    counting_filter.add("a")
    assert counting_filter.hamming_weight == len(counting_filter.support())
    assert counting_filter.fill_ratio == counting_filter.hamming_weight / counting_filter.m


def test_current_and_expected_fpp(counting_filter):
    for i in range(100):
        counting_filter.add(f"i-{i}")
    assert 0 < counting_filter.current_fpp() < 1
    assert 0 < counting_filter.expected_fpp() < 1


def test_for_capacity():
    cbf = CountingBloomFilter.for_capacity(100, 0.01)
    assert cbf.m > 900  # ~9.6 counters per item
    assert cbf.k in (6, 7)


def test_invalid_construction():
    with pytest.raises(ParameterError):
        CountingBloomFilter(0, 1)
    with pytest.raises(ParameterError):
        CountingBloomFilter(10, 0)


@settings(max_examples=25)
@given(st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=25, unique=True))
def test_property_insert_then_delete_all_restores_empty(items):
    cbf = CountingBloomFilter(2048, 3)
    for item in items:
        cbf.add(item)
    for item in items:
        assert cbf.remove(item)
    assert cbf.hamming_weight == 0
    assert all(item not in cbf for item in items)


@settings(max_examples=25)
@given(st.lists(st.text(min_size=1, max_size=12), min_size=2, max_size=25, unique=True))
def test_property_deleting_one_item_keeps_others(items):
    cbf = CountingBloomFilter(4096, 3)
    for item in items:
        cbf.add(item)
    removed = items[0]
    cbf.remove(removed)
    assert all(item in cbf for item in items[1:])
