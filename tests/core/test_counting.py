"""CountingBloomFilter: deletion semantics, overflow policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.counters import OverflowPolicy
from repro.core.counting import CountingBloomFilter
from repro.exceptions import ParameterError


def test_add_remove_round_trip(counting_filter):
    counting_filter.add("x")
    assert "x" in counting_filter
    assert counting_filter.remove("x") is True
    assert "x" not in counting_filter


def test_remove_absent_item_reports_false(counting_filter):
    assert counting_filter.remove("never-inserted") is False
    assert counting_filter.deletions == 1


def test_duplicate_insertions_survive_single_removal(counting_filter):
    counting_filter.add("dup")
    counting_filter.add("dup")
    counting_filter.remove("dup")
    assert "dup" in counting_filter  # counted twice, removed once
    counting_filter.remove("dup")
    assert "dup" not in counting_filter


def test_removing_absent_item_can_create_false_negatives():
    # The deletion-adversary mechanism: removing an item that merely
    # *appears* present decrements a victim's counters.
    cbf = CountingBloomFilter(8, 2)  # tiny filter forces overlaps
    for i in range(6):
        cbf.add(f"legit-{i}")
    victims_before = [f"legit-{i}" for i in range(6) if f"legit-{i}" in cbf]
    for probe in range(200):
        item = f"probe-{probe}"
        if item in cbf and not any(item == v for v in victims_before):
            cbf.remove(item)
    lost = [v for v in victims_before if v not in cbf]
    # At this size collateral loss is essentially guaranteed.
    assert lost


def test_underflow_is_tracked():
    cbf = CountingBloomFilter(64, 2)
    cbf.remove("ghost")  # decrements zero counters
    assert cbf.counters.underflow_events > 0


def test_wrap_overflow_erases_membership(dablooms_slice):
    # 16 single-target increments of a 4-bit counter wrap it to zero.
    target = dablooms_slice
    # Simulate k hits on one counter per item via add_indexes.
    for _ in range(16):
        target.add_indexes([5])
    assert target.counters.get(5) == 0
    assert target.overflow_events >= 1


def test_saturate_overflow_keeps_membership():
    cbf = CountingBloomFilter(32, 1, counter_bits=2, overflow=OverflowPolicy.SATURATE)
    for _ in range(10):
        cbf.add_indexes([3])
    assert cbf.counters.get(3) == 3  # stuck at max, still non-zero


def test_weight_and_fill(counting_filter):
    counting_filter.add("a")
    assert counting_filter.hamming_weight == len(counting_filter.support())
    assert counting_filter.fill_ratio == counting_filter.hamming_weight / counting_filter.m


def test_current_and_expected_fpp(counting_filter):
    for i in range(100):
        counting_filter.add(f"i-{i}")
    assert 0 < counting_filter.current_fpp() < 1
    assert 0 < counting_filter.expected_fpp() < 1


def test_for_capacity():
    cbf = CountingBloomFilter.for_capacity(100, 0.01)
    assert cbf.m > 900  # ~9.6 counters per item
    assert cbf.k in (6, 7)


def test_invalid_construction():
    with pytest.raises(ParameterError):
        CountingBloomFilter(0, 1)
    with pytest.raises(ParameterError):
        CountingBloomFilter(10, 0)


@settings(max_examples=25)
@given(st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=25, unique=True))
def test_property_insert_then_delete_all_restores_empty(items):
    cbf = CountingBloomFilter(2048, 3)
    for item in items:
        cbf.add(item)
    for item in items:
        assert cbf.remove(item)
    assert cbf.hamming_weight == 0
    assert all(item not in cbf for item in items)


@settings(max_examples=25)
@given(st.lists(st.text(min_size=1, max_size=12), min_size=2, max_size=25, unique=True))
def test_property_deleting_one_item_keeps_others(items):
    cbf = CountingBloomFilter(4096, 3)
    for item in items:
        cbf.add(item)
    removed = items[0]
    cbf.remove(removed)
    assert all(item in cbf for item in items[1:])


# ----------------------------------------------------------------------
# Versioned snapshot header (the deletable-service warm-restart path)
# ----------------------------------------------------------------------


def test_snapshot_round_trip_preserves_counters_and_counts():
    cbf = CountingBloomFilter(777, 3)
    for item in ("a", "b", "c", "dup", "dup"):
        cbf.add(item)
    cbf.remove("a")
    raw = cbf.snapshot_bytes()

    rebuilt = CountingBloomFilter.from_snapshot(raw, strategy=cbf.strategy)
    assert rebuilt.m == 777 and rebuilt.k == 3
    assert len(rebuilt) == 5 and rebuilt.deletions == 1
    assert rebuilt.counters.values() == cbf.counters.values()
    assert "dup" in rebuilt and "a" not in rebuilt
    # The counter values survive, so a later deletion still works.
    assert rebuilt.remove("dup") is True
    assert "dup" in rebuilt  # counted twice, removed once

    in_place = CountingBloomFilter(777, 3, strategy=cbf.strategy)
    in_place.restore_snapshot(raw)
    assert in_place.counters.values() == cbf.counters.values()


def test_snapshot_preserves_wide_counters():
    cbf = CountingBloomFilter(64, 2, counter_bits=8)
    for _ in range(200):
        cbf.add("hot")
    raw = cbf.snapshot_bytes()
    rebuilt = CountingBloomFilter.from_snapshot(raw, strategy=cbf.strategy)
    assert rebuilt.counters.counter_bits == 8
    assert rebuilt.counters.values() == cbf.counters.values()


def test_snapshot_rejects_corruption_and_mismatch():
    from repro.exceptions import SnapshotError

    cbf = CountingBloomFilter(128, 3)
    cbf.add("x")
    raw = cbf.snapshot_bytes()

    with pytest.raises(SnapshotError, match="magic"):
        CountingBloomFilter.from_snapshot(b"nope" + raw[4:])
    with pytest.raises(SnapshotError, match="truncated"):
        CountingBloomFilter.from_snapshot(raw[:8])
    with pytest.raises(SnapshotError, match="payload"):
        CountingBloomFilter.from_snapshot(raw[:-1])
    with pytest.raises(SnapshotError, match="geometry"):
        CountingBloomFilter(129, 3).restore_snapshot(raw)
    with pytest.raises(SnapshotError, match="geometry"):
        CountingBloomFilter(128, 3, counter_bits=5).restore_snapshot(raw)
    # A payload with out-of-range counter values is refused cleanly.
    narrow = CountingBloomFilter(128, 3, counter_bits=2)
    wide = CountingBloomFilter(128, 3, counter_bits=2)
    body = bytearray(wide.snapshot_bytes())
    body[-1] = 9  # above the 2-bit maximum
    with pytest.raises(SnapshotError, match="corrupt"):
        narrow.restore_snapshot(bytes(body))
    # Failed restores leave the filter untouched.
    assert narrow.counters.values() == [0] * 128


def test_restore_keeps_strategy_and_overflow_policy():
    cbf = CountingBloomFilter(256, 4, overflow=OverflowPolicy.WRAP)
    cbf.add("item")
    restored = CountingBloomFilter(256, 4, strategy=cbf.strategy, overflow=OverflowPolicy.WRAP)
    restored.restore_snapshot(cbf.snapshot_bytes())
    assert restored.overflow is OverflowPolicy.WRAP
    assert restored.indexes("item") == cbf.indexes("item")
