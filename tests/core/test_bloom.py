"""Classic BloomFilter: invariants, constructors, serialisation, algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bloom import BloomFilter, default_strategy
from repro.core.params import BloomParameters
from repro.exceptions import ParameterError
from repro.hashing.kirsch_mitzenmacher import KirschMitzenmacherStrategy
from repro.hashing.salted import SaltedHashStrategy
from repro.hashing.crypto import MD5


def test_no_false_negatives_basic(small_filter):
    items = [f"item-{i}" for i in range(300)]
    for item in items:
        small_filter.add(item)
    assert all(item in small_filter for item in items)


def test_add_reports_prior_presence(small_filter):
    assert small_filter.add("fresh") is False
    assert small_filter.add("fresh") is True


def test_len_counts_insertions(small_filter):
    for i in range(5):
        small_filter.add("same-item")
    assert len(small_filter) == 5  # insertions, not distinct items


def test_weight_tracked_incrementally(small_filter):
    for i in range(50):
        small_filter.add(f"w-{i}")
    assert small_filter.hamming_weight == small_filter.bits.hamming_weight()
    assert small_filter.fill_ratio == small_filter.hamming_weight / small_filter.m


def test_indexes_are_public_and_stable(small_filter):
    first = small_filter.indexes("http://example.com")
    assert first == small_filter.indexes("http://example.com")
    assert len(first) == small_filter.k
    assert all(0 <= i < small_filter.m for i in first)


def test_contains_indexes_matches_contains(small_filter):
    small_filter.add("probe")
    assert small_filter.contains_indexes(small_filter.indexes("probe"))
    assert ("probe" in small_filter) == small_filter.contains_indexes(
        small_filter.indexes("probe")
    )


def test_add_indexes_low_level(small_filter):
    small_filter.add_indexes((1, 2, 3, 4))
    assert small_filter.hamming_weight == 4
    assert len(small_filter) == 1


def test_current_vs_expected_fpp(small_filter):
    for i in range(200):
        small_filter.add(f"f-{i}")
    current = small_filter.current_fpp()
    expected = small_filter.expected_fpp()
    # Both estimates should be in the same ballpark for uniform inserts.
    assert 0 < current < 1
    assert 0 < expected < 1
    assert current == (small_filter.hamming_weight / small_filter.m) ** small_filter.k


def test_worst_case_fpp(small_filter):
    assert small_filter.worst_case_fpp(600) == pytest.approx((600 * 4 / 3200) ** 4)


def test_for_capacity_derives_paper_parameters():
    bf = BloomFilter.for_capacity(600, 0.077)
    # The Fig. 3 setting: m ~ 3200, k = 4.
    assert 3100 <= bf.m <= 3300
    assert bf.k == 4


def test_worst_case_constructor():
    bf = BloomFilter.worst_case(600, 3200)
    assert bf.k == 2  # round(3200 / (e * 600)) = round(1.96)
    assert bf.m == 3200


def test_from_parameters():
    params = BloomParameters(m=128, k=3, n=10)
    bf = BloomFilter.from_parameters(params)
    assert (bf.m, bf.k) == (128, 3)


def test_invalid_construction():
    with pytest.raises(ParameterError):
        BloomFilter(0, 4)
    with pytest.raises(ParameterError):
        BloomFilter(100, 0)


def test_saturation_detection():
    bf = BloomFilter(16, 2)
    assert not bf.is_saturated()
    bf.add_indexes(range(16))
    assert bf.is_saturated()
    assert "anything at all" in bf  # saturated filter says yes to everything


def test_serialisation_round_trip(small_filter):
    for i in range(40):
        small_filter.add(f"s-{i}")
    restored = BloomFilter.from_bytes(
        small_filter.m, small_filter.k, small_filter.to_bytes(), small_filter.strategy
    )
    assert restored.hamming_weight == small_filter.hamming_weight
    assert all(f"s-{i}" in restored for i in range(40))


def test_union_contains_both_sides():
    strategy = default_strategy()
    a = BloomFilter(512, 3, strategy)
    b = BloomFilter(512, 3, strategy)
    a.add("left")
    b.add("right")
    u = a.union(b)
    assert "left" in u and "right" in u


def test_intersection_is_superset_of_true_intersection():
    strategy = default_strategy()
    a = BloomFilter(512, 3, strategy)
    b = BloomFilter(512, 3, strategy)
    for item in ("common", "only-a"):
        a.add(item)
    for item in ("common", "only-b"):
        b.add(item)
    inter = a.intersection(b)
    assert "common" in inter


def test_set_algebra_requires_same_strategy():
    a = BloomFilter(512, 3, SaltedHashStrategy(MD5()))
    b = BloomFilter(512, 3, SaltedHashStrategy(MD5()))
    with pytest.raises(ParameterError):
        a.union(b)  # equal config but different strategy objects


def test_copy_is_independent(small_filter):
    small_filter.add("orig")
    clone = small_filter.copy()
    clone.add("extra")
    assert len(clone) == 2 and len(small_filter) == 1
    assert clone.strategy is small_filter.strategy


def test_works_with_km_strategy():
    bf = BloomFilter(977, 5, KirschMitzenmacherStrategy())
    bf.add("dablooms-style")
    assert "dablooms-style" in bf


@settings(max_examples=30)
@given(st.lists(st.text(min_size=1, max_size=20), min_size=1, max_size=50, unique=True))
def test_property_no_false_negatives(items):
    bf = BloomFilter(4096, 4)
    for item in items:
        bf.add(item)
    assert all(item in bf for item in items)


@settings(max_examples=20)
@given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=30, unique=True))
def test_property_weight_bounded_by_nk(items):
    bf = BloomFilter(2048, 3)
    for item in items:
        bf.add(item)
    assert bf.hamming_weight <= len(items) * bf.k
