"""Dablooms: scaling counting filter with the paper's parameters."""

from __future__ import annotations

import pytest

from repro.core.counters import OverflowPolicy
from repro.core.dablooms import Dablooms
from repro.exceptions import ParameterError
from repro.hashing.kirsch_mitzenmacher import KirschMitzenmacherStrategy


def test_defaults_match_paper():
    d = Dablooms(slice_capacity=100)
    assert d.f0 == 0.01
    assert d.r == 0.9
    assert d.COUNTER_BITS == 4
    assert d.overflow is OverflowPolicy.WRAP
    assert isinstance(d.strategy, KirschMitzenmacherStrategy)


def test_scales_on_capacity():
    d = Dablooms(slice_capacity=50)
    for i in range(120):
        d.add(f"mal-{i}")
    assert d.slice_count == 3
    assert d.slice_fill(0) == 50
    assert d.slice_fill(2) == 20


def test_no_false_negatives_without_deletion():
    d = Dablooms(slice_capacity=40)
    items = [f"bad-{i}" for i in range(100)]
    for item in items:
        d.add(item)
    assert all(item in d for item in items)


def test_remove_from_correct_slice():
    d = Dablooms(slice_capacity=30)
    for i in range(60):
        d.add(f"r-{i}")
    assert d.remove("r-5") is True  # lives in slice 0
    assert "r-5" not in d
    assert d.remove("r-5") is False  # already gone


def test_remove_unknown_is_noop():
    d = Dablooms(slice_capacity=10)
    d.add("present")
    assert d.remove("absent-item") is False
    assert "present" in d


def test_compound_fpp_rises_with_slices():
    d = Dablooms(slice_capacity=25, f0=0.05)
    singles = []
    for i in range(75):
        d.add(f"c-{i}")
        if (i + 1) % 25 == 0:
            singles.append(d.compound_fpp(current=False))
    assert singles == sorted(singles)  # more slices, higher compound F


def test_slice_fpp_tightens():
    d = Dablooms(slice_capacity=10, f0=0.01, r=0.9)
    assert d.slice_fpp(1) == pytest.approx(0.009)
    assert d.slice_fpp(9) == pytest.approx(0.01 * 0.9**9)


def test_bulk_insertion_accounting_and_force_scale():
    d = Dablooms(slice_capacity=100)
    d.record_bulk_insertions(100)
    assert d.slice_fill(0) == 100
    d.force_scale()
    assert d.slice_count == 2
    with pytest.raises(ParameterError):
        d.record_bulk_insertions(-1)


def test_max_slices():
    d = Dablooms(slice_capacity=5, max_slices=2)
    with pytest.raises(ParameterError):
        for i in range(50):
            d.add(f"m-{i}")


def test_overflow_telemetry():
    d = Dablooms(slice_capacity=1000)
    assert d.total_overflow_events() == 0
    # Wrap one counter of the active slice 16 times.
    for _ in range(16):
        d.active_slice.add_indexes([0])
    assert d.total_overflow_events() == 1


def test_for_each_slice_visits_in_order():
    d = Dablooms(slice_capacity=10)
    for i in range(25):
        d.add(f"v-{i}")
    seen: list[int] = []
    d.for_each_slice(lambda i, s: seen.append(i))
    assert seen == [0, 1, 2]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"slice_capacity": 0},
        {"slice_capacity": 10, "f0": 0.0},
        {"slice_capacity": 10, "r": 1.5},
    ],
)
def test_invalid_construction(kwargs):
    with pytest.raises(ParameterError):
        Dablooms(**kwargs)
