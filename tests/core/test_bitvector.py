"""BitVector: bit ops, support/weight, serialisation, algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.bitvector import BitVector, popcount


def test_initially_empty():
    vec = BitVector(100)
    assert len(vec) == 100
    assert vec.hamming_weight() == 0
    assert vec.support() == set()
    assert vec.fill_ratio() == 0.0


def test_set_get_clear_cycle():
    vec = BitVector(50)
    assert vec.set(7) is True  # newly set
    assert vec.get(7) is True
    assert vec.set(7) is False  # already set
    assert vec.clear(7) is True
    assert vec.get(7) is False
    assert vec.clear(7) is False


def test_bounds_checked():
    vec = BitVector(16)
    for bad in (-1, 16, 1000):
        with pytest.raises(IndexError):
            vec.get(bad)
        with pytest.raises(IndexError):
            vec.set(bad)


def test_invalid_size():
    with pytest.raises(ValueError):
        BitVector(0)


def test_support_and_weight_agree():
    vec = BitVector(200)
    positions = {3, 77, 154, 199, 0}
    for p in positions:
        vec.set(p)
    assert vec.support() == positions
    assert vec.hamming_weight() == len(positions)
    assert list(vec.iter_support()) == sorted(positions)


def test_iter_zeros_complements_support():
    vec = BitVector(40)
    for p in (1, 5, 39):
        vec.set(p)
    zeros = set(vec.iter_zeros())
    assert zeros | vec.support() == set(range(40))
    assert zeros & vec.support() == set()


def test_set_all_respects_padding():
    vec = BitVector(13)  # not a multiple of 8
    vec.set_all()
    assert vec.hamming_weight() == 13
    vec.clear_all()
    assert vec.hamming_weight() == 0


def test_from_indices():
    vec = BitVector.from_indices(30, [2, 4, 6])
    assert vec.support() == {2, 4, 6}


def test_serialisation_round_trip():
    vec = BitVector.from_indices(77, [0, 13, 76])
    restored = BitVector.from_bytes(77, vec.to_bytes())
    assert restored == vec
    with pytest.raises(ValueError):
        BitVector.from_bytes(77, b"short")


def test_copy_is_independent():
    vec = BitVector.from_indices(10, [1])
    clone = vec.copy()
    clone.set(2)
    assert vec.support() == {1}
    assert clone.support() == {1, 2}


def test_union_and_intersection():
    a = BitVector.from_indices(20, [1, 2, 3])
    b = BitVector.from_indices(20, [3, 4])
    assert (a | b).support() == {1, 2, 3, 4}
    assert (a & b).support() == {3}
    with pytest.raises(ValueError):
        a | BitVector(21)


def test_equality_and_unhashable():
    a = BitVector.from_indices(8, [1])
    b = BitVector.from_indices(8, [1])
    assert a == b
    assert a != BitVector.from_indices(8, [2])
    assert (a == "not a vector") is False or (a == "not a vector") is NotImplemented or True
    with pytest.raises(TypeError):
        hash(a)


# --- batch operations (the service hot path) -------------------------------------


def test_set_indexes_counts_newly_set():
    vec = BitVector(64)
    assert vec.set_indexes([1, 9, 17]) == 3
    assert vec.set_indexes([1, 9, 25]) == 1  # two already set
    assert vec.support() == {1, 9, 17, 25}


def test_set_indexes_duplicates_counted_once():
    vec = BitVector(32)
    assert vec.set_indexes([5, 5, 5, 6]) == 2
    assert vec.hamming_weight() == 2


def test_set_indexes_out_of_range_leaves_vector_untouched():
    vec = BitVector(16)
    vec.set(3)
    before = vec.to_bytes()
    for bad_batch in ([0, 16], [-1], [5, 1000, 6]):
        with pytest.raises(IndexError):
            vec.set_indexes(bad_batch)
        assert vec.to_bytes() == before  # validation precedes any write


def test_all_set_and_get_many():
    vec = BitVector.from_indices(40, [0, 8, 39])
    assert vec.all_set([0, 8, 39]) is True
    assert vec.all_set([0, 8, 38]) is False
    assert vec.all_set([]) is True
    assert vec.get_many([0, 1, 8, 38, 39]) == [True, False, True, False, True]
    with pytest.raises(IndexError):
        vec.all_set([40])
    with pytest.raises(IndexError):
        vec.get_many([-1])


def test_batch_matches_scalar_on_byte_boundaries():
    # Sizes straddling byte boundaries: padding bits must stay untouched.
    for size in (8, 9, 15, 16, 17, 64, 65):
        vec = BitVector(size)
        indexes = list(range(0, size, 3)) + [size - 1]
        scalar = BitVector(size)
        for i in indexes:
            scalar.set(i)
        assert vec.set_indexes(indexes) == len(set(indexes))
        assert vec == scalar
        assert vec.hamming_weight() == len(set(indexes))


def test_union_update_counts_new_bits_bytewise():
    vec = BitVector.from_indices(24, [0, 9])
    other = BitVector.from_indices(24, [0, 9, 10, 23])
    assert vec.union_update(other.to_bytes()) == 2
    assert vec.support() == {0, 9, 10, 23}
    assert vec.union_update(other.to_bytes()) == 0
    with pytest.raises(ValueError):
        vec.union_update(b"\x00")


def test_union_update_ignores_padding_bits():
    vec = BitVector(12)  # 2 bytes, 4 padding bits
    assert vec.union_update(b"\xff\xff") == 12
    assert vec.hamming_weight() == 12
    assert vec.fill_ratio() == 1.0
    assert max(vec.support()) == 11  # nothing past size leaks in


def test_popcount_table():
    assert popcount(b"") == 0
    assert popcount(b"\x00\xff\x01") == 9
    assert popcount(bytes(range(256))) == sum(bin(i).count("1") for i in range(256))


def test_popcount_after_clear():
    vec = BitVector(64)
    vec.set_indexes(range(0, 64, 2))
    assert popcount(vec.to_bytes()) == vec.hamming_weight() == 32
    for i in range(0, 64, 4):
        vec.clear(i)
    assert popcount(vec.to_bytes()) == vec.hamming_weight() == 16
    vec.clear_all()
    assert popcount(vec.to_bytes()) == vec.hamming_weight() == 0


@given(st.sets(st.integers(min_value=0, max_value=499), max_size=60))
def test_set_indexes_matches_scalar_sets(positions):
    batch = BitVector(500)
    assert batch.set_indexes(sorted(positions)) == len(positions)
    assert batch == BitVector.from_indices(500, positions)
    assert batch.all_set(list(positions)) is True


@given(st.sets(st.integers(min_value=0, max_value=499), max_size=60))
def test_weight_matches_set_cardinality(positions):
    vec = BitVector.from_indices(500, positions)
    assert vec.hamming_weight() == len(positions)
    assert vec.support() == set(positions)


@given(
    st.sets(st.integers(min_value=0, max_value=127), max_size=30),
    st.sets(st.integers(min_value=0, max_value=127), max_size=30),
)
def test_union_is_set_union(xs, ys):
    a = BitVector.from_indices(128, xs)
    b = BitVector.from_indices(128, ys)
    assert (a | b).support() == set(xs) | set(ys)
    assert (a & b).support() == set(xs) & set(ys)
