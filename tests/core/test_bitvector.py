"""BitVector: bit ops, support/weight, serialisation, algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.bitvector import BitVector


def test_initially_empty():
    vec = BitVector(100)
    assert len(vec) == 100
    assert vec.hamming_weight() == 0
    assert vec.support() == set()
    assert vec.fill_ratio() == 0.0


def test_set_get_clear_cycle():
    vec = BitVector(50)
    assert vec.set(7) is True  # newly set
    assert vec.get(7) is True
    assert vec.set(7) is False  # already set
    assert vec.clear(7) is True
    assert vec.get(7) is False
    assert vec.clear(7) is False


def test_bounds_checked():
    vec = BitVector(16)
    for bad in (-1, 16, 1000):
        with pytest.raises(IndexError):
            vec.get(bad)
        with pytest.raises(IndexError):
            vec.set(bad)


def test_invalid_size():
    with pytest.raises(ValueError):
        BitVector(0)


def test_support_and_weight_agree():
    vec = BitVector(200)
    positions = {3, 77, 154, 199, 0}
    for p in positions:
        vec.set(p)
    assert vec.support() == positions
    assert vec.hamming_weight() == len(positions)
    assert list(vec.iter_support()) == sorted(positions)


def test_iter_zeros_complements_support():
    vec = BitVector(40)
    for p in (1, 5, 39):
        vec.set(p)
    zeros = set(vec.iter_zeros())
    assert zeros | vec.support() == set(range(40))
    assert zeros & vec.support() == set()


def test_set_all_respects_padding():
    vec = BitVector(13)  # not a multiple of 8
    vec.set_all()
    assert vec.hamming_weight() == 13
    vec.clear_all()
    assert vec.hamming_weight() == 0


def test_from_indices():
    vec = BitVector.from_indices(30, [2, 4, 6])
    assert vec.support() == {2, 4, 6}


def test_serialisation_round_trip():
    vec = BitVector.from_indices(77, [0, 13, 76])
    restored = BitVector.from_bytes(77, vec.to_bytes())
    assert restored == vec
    with pytest.raises(ValueError):
        BitVector.from_bytes(77, b"short")


def test_copy_is_independent():
    vec = BitVector.from_indices(10, [1])
    clone = vec.copy()
    clone.set(2)
    assert vec.support() == {1}
    assert clone.support() == {1, 2}


def test_union_and_intersection():
    a = BitVector.from_indices(20, [1, 2, 3])
    b = BitVector.from_indices(20, [3, 4])
    assert (a | b).support() == {1, 2, 3, 4}
    assert (a & b).support() == {3}
    with pytest.raises(ValueError):
        a | BitVector(21)


def test_equality_and_unhashable():
    a = BitVector.from_indices(8, [1])
    b = BitVector.from_indices(8, [1])
    assert a == b
    assert a != BitVector.from_indices(8, [2])
    assert (a == "not a vector") is False or (a == "not a vector") is NotImplemented or True
    with pytest.raises(TypeError):
        hash(a)


@given(st.sets(st.integers(min_value=0, max_value=499), max_size=60))
def test_weight_matches_set_cardinality(positions):
    vec = BitVector.from_indices(500, positions)
    assert vec.hamming_weight() == len(positions)
    assert vec.support() == set(positions)


@given(
    st.sets(st.integers(min_value=0, max_value=127), max_size=30),
    st.sets(st.integers(min_value=0, max_value=127), max_size=30),
)
def test_union_is_set_union(xs, ys):
    a = BitVector.from_indices(128, xs)
    b = BitVector.from_indices(128, ys)
    assert (a | b).support() == set(xs) | set(ys)
    assert (a & b).support() == set(xs) & set(ys)
