"""ScalableBloomFilter: growth, tightening, compound FP."""

from __future__ import annotations

import pytest

from repro.core.scalable import ScalableBloomFilter
from repro.exceptions import ParameterError


def test_starts_with_one_slice():
    sbf = ScalableBloomFilter(slice_capacity=10, f0=0.01)
    assert sbf.slice_count == 1


def test_grows_on_threshold():
    sbf = ScalableBloomFilter(slice_capacity=10, f0=0.01)
    for i in range(25):
        sbf.add(f"i-{i}")
    assert sbf.slice_count == 3  # 10 + 10 + 5


def test_no_false_negatives_across_slices():
    sbf = ScalableBloomFilter(slice_capacity=20, f0=0.02)
    items = [f"grow-{i}" for i in range(100)]
    for item in items:
        sbf.add(item)
    assert all(item in sbf for item in items)
    assert len(sbf) == 100


def test_tightening_ratio():
    sbf = ScalableBloomFilter(slice_capacity=10, f0=0.04, r=0.5)
    assert sbf.slice_fpp(0) == 0.04
    assert sbf.slice_fpp(1) == 0.02
    assert sbf.slice_fpp(3) == pytest.approx(0.005)


def test_growth_factor_scales_capacity():
    sbf = ScalableBloomFilter(slice_capacity=8, f0=0.01, growth=2)
    assert sbf.slice_capacity_at(0) == 8
    assert sbf.slice_capacity_at(2) == 32
    for i in range(8 + 16 + 1):
        sbf.add(f"g-{i}")
    assert sbf.slice_count == 3


def test_later_slices_are_bigger_for_tighter_targets():
    sbf = ScalableBloomFilter(slice_capacity=50, f0=0.01, r=0.5)
    for i in range(101):
        sbf.add(f"s-{i}")
    sizes = [s.m for s in sbf.slices]
    assert sizes == sorted(sizes)
    assert sizes[1] > sizes[0]


def test_compound_fpp_design_and_current():
    sbf = ScalableBloomFilter(slice_capacity=30, f0=0.05)
    for i in range(60):
        sbf.add(f"c-{i}")
    design = sbf.compound_fpp(current=False)
    current = sbf.compound_fpp(current=True)
    assert 0 < design < 1
    assert 0 <= current < 1
    # With two slices the design compound must exceed a single slice's f0*r.
    assert design > sbf.slice_fpp(1) * 0.9


def test_max_slices_enforced():
    sbf = ScalableBloomFilter(slice_capacity=5, f0=0.01, max_slices=2)
    with pytest.raises(ParameterError):
        for i in range(100):
            sbf.add(f"x-{i}")


def test_total_bits_accumulates():
    sbf = ScalableBloomFilter(slice_capacity=10, f0=0.01)
    before = sbf.total_bits
    for i in range(15):
        sbf.add(f"t-{i}")
    assert sbf.total_bits > before


def test_add_returns_prior_presence():
    sbf = ScalableBloomFilter(slice_capacity=100, f0=0.001)
    assert sbf.add("q") is False
    assert sbf.add("q") is True


def test_strategy_factory_called_per_slice():
    calls: list[int] = []

    def factory(i: int):
        calls.append(i)
        from repro.core.bloom import default_strategy

        return default_strategy()

    sbf = ScalableBloomFilter(slice_capacity=5, f0=0.01, strategy_factory=factory)
    for i in range(12):
        sbf.add(f"f-{i}")
    assert calls == [0, 1, 2]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"slice_capacity": 0, "f0": 0.1},
        {"slice_capacity": 10, "f0": 0.0},
        {"slice_capacity": 10, "f0": 1.5},
        {"slice_capacity": 10, "f0": 0.1, "r": 0.0},
        {"slice_capacity": 10, "f0": 0.1, "growth": 0},
    ],
)
def test_invalid_construction(kwargs):
    with pytest.raises(ParameterError):
        ScalableBloomFilter(**kwargs)
