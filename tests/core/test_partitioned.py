"""PartitionedBloomFilter: per-partition placement and FP model."""

from __future__ import annotations

import pytest

from repro.core.partitioned import PartitionedBloomFilter
from repro.exceptions import ParameterError


def test_rounds_m_down_to_multiple_of_k():
    pf = PartitionedBloomFilter(1001, 4)
    assert pf.m == 1000
    assert pf.partition_bits == 250


def test_indexes_land_in_own_partitions():
    pf = PartitionedBloomFilter(1200, 4)
    for item in ("a", "b", "c"):
        indexes = pf.indexes(item)
        for partition, index in enumerate(indexes):
            assert partition * 300 <= index < (partition + 1) * 300


def test_no_false_negatives():
    pf = PartitionedBloomFilter(2048, 4)
    items = [f"p-{i}" for i in range(100)]
    for item in items:
        pf.add(item)
    assert all(item in pf for item in items)


def test_add_reports_prior_presence():
    pf = PartitionedBloomFilter(512, 2)
    assert pf.add("x") is False
    assert pf.add("x") is True


def test_partition_weight_sums_to_total():
    pf = PartitionedBloomFilter(400, 4)
    for i in range(30):
        pf.add(f"w-{i}")
    assert sum(pf.partition_weight(i) for i in range(4)) == pf.hamming_weight


def test_partition_weight_bounds():
    pf = PartitionedBloomFilter(100, 4)
    with pytest.raises(ParameterError):
        pf.partition_weight(4)


def test_current_fpp_is_product_of_partition_fills():
    pf = PartitionedBloomFilter(40, 2)
    for i in range(8):
        pf.add(f"f-{i}")
    w0, w1 = pf.partition_weight(0), pf.partition_weight(1)
    assert pf.current_fpp() == pytest.approx((w0 / 20) * (w1 / 20))


def test_invalid_construction():
    with pytest.raises(ParameterError):
        PartitionedBloomFilter(3, 4)  # m < k
    with pytest.raises(ParameterError):
        PartitionedBloomFilter(100, 0)
