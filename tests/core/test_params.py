"""Parameter calculus: classical and worst-case formulas (paper eqs. 1-3, 7, 9-12)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.params import (
    BloomParameters,
    adversarial_fpp,
    adversarial_optimal_fpp,
    adversarial_optimal_k,
    false_positive_exact,
    false_positive_probability,
    fpp_ratio,
    honest_fpp_at_adversarial_k,
    k_ratio,
    optimal_fpp,
    optimal_k,
    optimal_m,
    paper_size_inflation_factor,
)
from repro.exceptions import ParameterError


def test_fig3_parameters():
    # The paper's running example: m=3200, n=600 -> k_opt ~ 4, f ~ 0.077.
    assert round(optimal_k(3200, 600)) == 4
    assert optimal_fpp(3200, 600) == pytest.approx(0.077, abs=0.002)


def test_optimal_m_inverts_optimal_fpp():
    m = optimal_m(600, 0.077)
    assert optimal_fpp(m, 600) <= 0.077
    assert optimal_fpp(m - 10, 600) > 0.0769


def test_approx_vs_exact_fpp_close():
    approx = false_positive_probability(3200, 600, 4)
    exact = false_positive_exact(3200, 600, 4)
    assert approx == pytest.approx(exact, rel=0.01)


def test_fpp_zero_for_empty_filter():
    assert false_positive_probability(100, 0, 3) == 0.0
    assert false_positive_exact(100, 0, 3) == 0.0
    assert adversarial_fpp(100, 0, 3) == 0.0


def test_adversarial_fpp_formula_and_clamp():
    assert adversarial_fpp(3200, 600, 4) == pytest.approx((2400 / 3200) ** 4)
    assert adversarial_fpp(3200, 600, 4) == pytest.approx(0.3164, abs=1e-3)
    assert adversarial_fpp(100, 1000, 4) == 1.0  # saturated


def test_adversarial_beats_honest_everywhere_past_birthday():
    m, k = 3200, 4
    for n in range(50, 601, 50):
        assert adversarial_fpp(m, n, k) >= false_positive_probability(m, n, k)


def test_adversarial_optimal_k_and_fpp():
    # k_adv = m/(en): paper eq. 9-10.
    assert adversarial_optimal_k(3200, 600) == pytest.approx(1.962, abs=1e-3)
    assert adversarial_optimal_fpp(3200, 600) == pytest.approx(
        math.exp(-3200 / (math.e * 600))
    )


def test_adversarial_k_minimises_adversarial_fpp():
    m, n = 3200, 600
    k_star = adversarial_optimal_k(m, n)
    best = (n * k_star / m) ** k_star
    for k in (1, 2, 3, 4, 6):
        assert (n * k / m) ** k >= best - 1e-12


def test_eq12_constant():
    # ln f = -0.433 m/n at k_adv.
    f = honest_fpp_at_adversarial_k(3200, 600)
    assert math.log(f) == pytest.approx(-0.433 * 3200 / 600, rel=0.002)


def test_k_ratio_is_e_ln2():
    assert k_ratio() == pytest.approx(math.e * math.log(2))
    assert k_ratio() == pytest.approx(1.88, abs=0.01)


def test_fpp_ratio_matches_1_05_power():
    # f_adv/f_opt = 1.05^(m/n) (paper Section 8.1).
    ratio = fpp_ratio(3200, 600)
    assert ratio == pytest.approx(1.05 ** (3200 / 600), rel=0.05)


def test_paper_size_inflation_constant():
    assert paper_size_inflation_factor() == pytest.approx(4.8, abs=0.05)


def test_design_optimal():
    params = BloomParameters.design_optimal(600, 0.077)
    assert params.k == 4
    assert params.mode == "optimal"
    assert params.fpp <= 0.078


def test_design_with_memory():
    params = BloomParameters.design_with_memory(3200, 600)
    assert (params.m, params.k) == (3200, 4)


def test_design_worst_case():
    params = BloomParameters.design_worst_case(600, 3200)
    assert params.k == 2
    assert params.mode == "worst-case"
    # The hardened design caps the adversary below the classical design.
    classical = BloomParameters.design_with_memory(3200, 600)
    assert params.adversarial < classical.adversarial


def test_bits_per_item():
    params = BloomParameters(m=3200, k=4, n=600)
    assert params.bits_per_item == pytest.approx(3200 / 600)


def test_invalid_inputs():
    with pytest.raises(ParameterError):
        optimal_k(0, 10)
    with pytest.raises(ParameterError):
        optimal_m(10, 1.5)
    with pytest.raises(ParameterError):
        false_positive_probability(100, -1, 2)
    with pytest.raises(ParameterError):
        BloomParameters(m=0, k=1, n=1)


@given(
    st.integers(min_value=100, max_value=100_000),
    st.integers(min_value=1, max_value=1000),
)
def test_property_fpp_monotone_in_n(m, n):
    k = 4
    assert false_positive_probability(m, n + 1, k) >= false_positive_probability(m, n, k)


@given(st.integers(min_value=10, max_value=5000))
def test_property_optimal_m_monotone_in_n(n):
    assert optimal_m(n + 1, 0.01) >= optimal_m(n, 0.01)


@given(
    st.integers(min_value=1000, max_value=50_000),
    st.integers(min_value=10, max_value=500),
)
def test_property_adversarial_dominates_at_capacity(m, n):
    k = max(1, round(optimal_k(m, n)))
    assert adversarial_fpp(m, n, k) >= false_positive_probability(m, n, k) - 1e-12
