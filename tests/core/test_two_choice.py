"""Two-choice Bloom filter: average-case win, worst-case loss."""

from __future__ import annotations

import pytest

from repro.adversary.two_choice_attack import TwoChoicePollutionAttack
from repro.core.bloom import BloomFilter
from repro.core.two_choice import TwoChoiceBloomFilter
from repro.exceptions import ParameterError
from repro.urlgen.faker import UrlFactory


def test_no_false_negatives():
    tc = TwoChoiceBloomFilter(2048, 4)
    items = [f"i-{n}" for n in range(200)]
    for item in items:
        tc.add(item)
    assert all(item in tc for item in items)


def test_add_reports_prior_presence():
    tc = TwoChoiceBloomFilter(512, 3)
    assert tc.add("x") is False
    assert tc.add("x") is True


def test_groups_are_independent_and_stable():
    tc = TwoChoiceBloomFilter(1024, 4)
    group_a, group_b = tc.groups("item")
    assert tc.groups("item") == (group_a, group_b)
    assert group_a != group_b


def test_chooses_lighter_group():
    tc = TwoChoiceBloomFilter(1024, 4)
    group_a, group_b = tc.groups("victim")
    # Pre-set all of group A: inserting the item should pick A (0 new
    # bits) and leave group B untouched.
    tc.add_indexes(group_a)
    weight_before = tc.hamming_weight
    tc.add("victim")
    assert tc.hamming_weight == weight_before


def test_average_case_beats_classic_filter():
    # The Lumetta-Mitzenmacher win: fewer set bits for the same workload.
    m, k, n = 4096, 4, 700
    classic = BloomFilter(m, k)
    two_choice = TwoChoiceBloomFilter(m, k)
    for url in UrlFactory(seed=1).urls(n):
        classic.add(url)
    for url in UrlFactory(seed=1).urls(n):
        two_choice.add(url)
    assert two_choice.hamming_weight < classic.hamming_weight


def test_worst_case_is_worse_than_classic():
    # The paper's answer: under chosen insertions the two-choice filter
    # ends at the same weight nk but with a bigger query-side OR.
    m, k, n = 2048, 4, 150
    classic_forced = (n * k / m) ** k
    tc = TwoChoiceBloomFilter(m, k)
    assert tc.worst_case_fpp(n) > classic_forced
    assert tc.worst_case_fpp(n) == pytest.approx(1 - (1 - classic_forced) ** 2)


def test_pollution_attack_defeats_the_choice():
    tc = TwoChoiceBloomFilter(2048, 4)
    report = TwoChoicePollutionAttack(tc, seed=2).run(60)
    assert report.weight_after == 60 * tc.k  # every insertion added k ones
    assert report.fpp_curve[-1] == pytest.approx(tc.worst_case_fpp(60))


def test_crafting_cost_is_constant_factor_harder():
    # Both-groups-fresh is roughly the square of one-group-fresh per
    # trial while sparse -- a constant factor, not a defence.
    m, k = 4096, 4
    tc = TwoChoiceBloomFilter(m, k)
    report = TwoChoicePollutionAttack(tc, seed=3).run(50)
    assert report.total_trials < 50 * 25  # far from prohibitive


def test_current_fpp_or_semantics():
    tc = TwoChoiceBloomFilter(64, 2)
    tc.add_indexes(range(32))
    single = (32 / 64) ** 2
    assert tc.current_fpp() == pytest.approx(1 - (1 - single) ** 2)


def test_validation():
    with pytest.raises(ParameterError):
        TwoChoiceBloomFilter(0, 2)
    with pytest.raises(ParameterError):
        TwoChoiceBloomFilter(16, 0)
