"""Accelerated-vs-pure backend parity.

The numpy kernels (:mod:`repro.core._kernels`) must be *bit-identical*
to the pure-Python loops: same batch answers, same serialised bytes,
same overflow/underflow tallies, same exceptions.  Every scenario here
runs once under ``pure`` and once under ``numpy`` and compares both the
returned values and the full serialised state.
"""

from __future__ import annotations

import random

import pytest

from repro import accel
from repro.core.bloom import BloomFilter
from repro.core.counters import OverflowPolicy
from repro.core.counting import CountingBloomFilter
from repro.core.dablooms import Dablooms
from repro.hashing.kirsch_mitzenmacher import KirschMitzenmacherStrategy

pytestmark = pytest.mark.skipif(
    accel.numpy_or_none() is None, reason="numpy backend unavailable"
)

# Batch sizes straddling ACCEL_MIN_BATCH, plus enough volume for heavy
# position collisions on the small geometries below.
BATCH_SIZES = (1, 63, 64, 500)


def _items(count: int, seed: int, dup_every: int = 7) -> list[bytes]:
    """Deterministic keys with deliberate duplicates (every ``dup_every``-th
    key repeats an earlier one, including within one batch)."""
    rng = random.Random(seed)
    out: list[bytes] = []
    for i in range(count):
        if out and i % dup_every == 0:
            out.append(out[rng.randrange(len(out))])
        else:
            out.append(b"key:%d:%d" % (seed, rng.randrange(10 * count + 1)))
    return out


def _run_bloom(mode: str, count: int) -> tuple:
    with accel.use_mode(mode):
        filt = BloomFilter(512, 4, KirschMitzenmacherStrategy())
        first = filt.add_batch(_items(count, seed=1))
        second = filt.add_batch(_items(count, seed=2))
        probes = filt.contains_batch(_items(count, seed=3))
        return (
            first,
            second,
            probes,
            filt.bits.hamming_weight(),
            filt.to_bytes(),
            filt.snapshot_bytes(),
        )


def _run_counting(mode: str, count: int, overflow: OverflowPolicy) -> tuple:
    with accel.use_mode(mode):
        filt = CountingBloomFilter(
            400,
            4,
            KirschMitzenmacherStrategy(),
            counter_bits=4,
            overflow=overflow,
        )
        added = filt.add_batch(_items(count, seed=4))
        probes = filt.contains_batch(_items(count, seed=5))
        # Remove a mix of present and absent keys, with duplicates.
        removed = filt.remove_batch(_items(count, seed=4)[: max(1, count // 2)] * 2)
        return (
            added,
            probes,
            removed,
            filt.hamming_weight,
            filt.counters.overflow_events,
            filt.counters.underflow_events,
            filt.counters.to_bytes(),
            filt.snapshot_bytes(),
        )


def _run_dablooms(mode: str, count: int) -> tuple:
    with accel.use_mode(mode):
        filt = Dablooms(slice_capacity=max(8, count // 3), f0=0.02)
        added = filt.add_batch(_items(count, seed=6))
        probes = filt.contains_batch(_items(count, seed=7))
        state = []
        filt.for_each_slice(
            lambda i, s: state.append((i, s.counters.to_bytes(), s.hamming_weight))
        )
        return added, probes, filt.slice_count, len(filt), state


@pytest.mark.parametrize("count", BATCH_SIZES)
def test_bloom_parity(count):
    assert _run_bloom("pure", count) == _run_bloom("numpy", count)


@pytest.mark.parametrize("count", BATCH_SIZES)
@pytest.mark.parametrize(
    "overflow", [OverflowPolicy.SATURATE, OverflowPolicy.WRAP, OverflowPolicy.RAISE]
)
def test_counting_parity(count, overflow):
    assert _run_counting("pure", count, overflow) == _run_counting(
        "numpy", count, overflow
    )


@pytest.mark.parametrize("count", BATCH_SIZES)
def test_dablooms_parity(count):
    assert _run_dablooms("pure", count) == _run_dablooms("numpy", count)


def test_snapshot_restore_crosses_backends():
    """A snapshot taken under one backend restores under the other with
    byte-identical state -- the shared-memory transfer path relies on it."""
    with accel.use_mode("numpy"):
        src = BloomFilter(512, 4, KirschMitzenmacherStrategy())
        src.add_batch(_items(300, seed=8))
        snap = src.snapshot_bytes()
    with accel.use_mode("pure"):
        dst = BloomFilter(512, 4, KirschMitzenmacherStrategy())
        dst.restore_snapshot(snap)
        assert dst.to_bytes() == src.to_bytes()
        assert dst.snapshot_bytes() == snap
        # And mutations after the restore stay in lockstep.
        extra = _items(100, seed=9)
        pure_answers = dst.add_batch(extra)
    with accel.use_mode("numpy"):
        src2 = BloomFilter(512, 4, KirschMitzenmacherStrategy())
        src2.restore_snapshot(snap)
        assert src2.add_batch(extra) == pure_answers
        assert src2.to_bytes() == dst.to_bytes()


def test_mode_flip_mid_life_is_seamless():
    """Alternating backends on one living filter never desynchronises
    the incremental weight or the stored bytes."""
    filt = BloomFilter(512, 4, KirschMitzenmacherStrategy())
    reference = BloomFilter(512, 4, KirschMitzenmacherStrategy())
    for round_no, mode in enumerate(["pure", "numpy", "pure", "numpy"]):
        batch = _items(150, seed=10 + round_no)
        with accel.use_mode(mode):
            answers = filt.add_batch(batch)
        with accel.use_mode("pure"):
            assert reference.add_batch(batch) == answers
        assert filt.to_bytes() == reference.to_bytes()
        assert filt.bits.hamming_weight() == reference.bits.hamming_weight()


def test_out_of_range_leaves_vector_untouched_both_backends():
    """Whole-batch validation: a bad index raises before any write."""
    from repro.core.bitvector import BitVector

    for mode in ("pure", "numpy"):
        with accel.use_mode(mode):
            vec = BitVector(64)
            flat = [1, 2, 3, 999] + [4] * 60
            with pytest.raises(IndexError):
                vec.set_groups(flat, 4)
            assert vec.to_bytes() == bytes(8)
            assert vec.hamming_weight() == 0


def test_raise_policy_parity_on_overflow():
    """RAISE keeps the sequential loop in both modes: same exception,
    same partial state, same insertion count."""
    results = []
    for mode in ("pure", "numpy"):
        with accel.use_mode(mode):
            filt = CountingBloomFilter(
                32,
                4,
                KirschMitzenmacherStrategy(),
                counter_bits=2,
                overflow=OverflowPolicy.RAISE,
            )
            batch = _items(90, seed=11, dup_every=2)
            try:
                filt.add_batch(batch)
                outcome = ("ok", None)
            except Exception as exc:  # CounterOverflowError, but parity matters
                outcome = ("raised", type(exc).__name__)
            results.append((outcome, len(filt), filt.counters.to_bytes()))
    assert results[0] == results[1]
