"""Squid CacheDigest: 5n+7 sizing, MD5-split indexes, exchange format."""

from __future__ import annotations

import hashlib
import struct

import pytest

from repro.core.cache_digest import (
    CacheDigest,
    SQUID_K,
    squid_digest_bits,
    squid_indexes,
)
from repro.exceptions import ParameterError


def test_sizing_formula():
    assert squid_digest_bits(151) == 762  # the paper's measured size
    assert squid_digest_bits(200) == 1007
    with pytest.raises(ParameterError):
        squid_digest_bits(0)


def test_four_indexes_from_one_md5():
    m = 762
    key = b"GEThttp://example.com/"
    digest = hashlib.md5(key).digest()
    expected = tuple(w % m for w in struct.unpack(">IIII", digest))
    assert squid_indexes(key, m) == expected
    assert len(squid_indexes(key, m)) == SQUID_K


def test_key_includes_method():
    digest = CacheDigest(100)
    get_indexes = digest.indexes("http://x.com/")
    post = CacheDigest(100, method="POST")
    post_indexes = post.indexes("http://x.com/")
    assert get_indexes != post_indexes  # method is part of the key


def test_membership_round_trip():
    digest = CacheDigest(50)
    urls = [f"http://site-{i}.example/" for i in range(50)]
    for url in urls:
        digest.add(url)
    assert all(url in digest for url in urls)
    assert len(digest) == 50


def test_build_sizes_to_content():
    urls = [f"http://b{i}.example/" for i in range(151)]
    digest = CacheDigest.build(urls)
    assert digest.m == 762
    assert all(url in digest for url in urls)


def test_build_with_explicit_capacity():
    digest = CacheDigest.build(["http://a.example/"], capacity=100)
    assert digest.m == squid_digest_bits(100)


def test_build_empty_cache():
    digest = CacheDigest.build([])
    assert digest.m == squid_digest_bits(1)
    assert digest.hamming_weight == 0


def test_add_reports_prior_presence():
    digest = CacheDigest(10)
    assert digest.add("http://u.example/") is False
    assert digest.add("http://u.example/") is True


def test_fpp_estimate_tracks_weight():
    digest = CacheDigest(151)
    for i in range(151):
        digest.add(f"http://w{i}.example/")
    assert digest.current_fpp() == (digest.hamming_weight / digest.m) ** 4
    # Paper: Squid's 5n+7 sizing gives ~0.09 at capacity, not 0.03.
    assert 0.04 < digest.current_fpp() < 0.16


def test_exchange_round_trip():
    digest = CacheDigest(30)
    for i in range(30):
        digest.add(f"http://e{i}.example/")
    received = CacheDigest.from_bytes(30, digest.to_bytes())
    assert all(f"http://e{i}.example/" in received for i in range(30))
    assert received.m == digest.m


def test_bytes_accepted_as_urls():
    digest = CacheDigest(5)
    digest.add(b"http://raw.example/")
    assert b"http://raw.example/" in digest
    assert "http://raw.example/" in digest  # str/bytes canonicalisation
