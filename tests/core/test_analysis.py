"""Occupancy analytics: expectations, bounds, saturation counts."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.analysis import (
    adversarial_saturation_items,
    birthday_threshold,
    coupon_collector_items,
    empirical_fpp,
    expected_set_bits,
    expected_weight_after,
    expected_zero_bits,
    occupancy_concentration_bound,
    pollution_gain,
    scalable_compound_fpp,
)
from repro.core.bloom import BloomFilter
from repro.exceptions import ParameterError


def test_expected_zero_bits_formula():
    # E(X) = m(1 - 1/m)^{kn} (paper eq. 4).
    assert expected_zero_bits(3200, 600, 4) == pytest.approx(
        3200 * (1 - 1 / 3200) ** 2400
    )
    assert expected_zero_bits(100, 0, 4) == 100.0


def test_expected_set_bits_complements_zeros():
    m, n, k = 1000, 100, 3
    assert expected_set_bits(m, n, k) + expected_zero_bits(m, n, k) == pytest.approx(m)


def test_optimal_fill_is_half():
    # At the classical optimum the expected number of zeros is m/2
    # (k = 4 is the *rounded* optimum for m/n = 5.33, hence the band).
    m, n = 3200, 600
    k = 4
    assert expected_zero_bits(m, n, k) == pytest.approx(m / 2, rel=0.06)
    # With the exact (fractional) optimum the identity is tight.
    k_exact = (m / n) * math.log(2)
    zeros_exact = m * math.exp(-k_exact * n / m)
    assert zeros_exact == pytest.approx(m / 2, rel=1e-9)


def test_expected_weight_adversarial_is_nk():
    assert expected_weight_after(3200, 600, 4, adversarial=True) == 2400
    assert expected_weight_after(100, 1000, 4, adversarial=True) == 100  # clamped


def test_pollution_gain_38_percent():
    assert pollution_gain() == pytest.approx(1.386, abs=0.001)


def test_concentration_bound_behaviour():
    # Paper eq. 5: tighter for larger epsilon, always a probability.
    loose = occupancy_concentration_bound(3200, 600, 4, 0.01)
    tight = occupancy_concentration_bound(3200, 600, 4, 0.05)
    assert 0 < tight < loose <= 1
    with pytest.raises(ParameterError):
        occupancy_concentration_bound(3200, 600, 4, 0)


def test_empirical_weight_within_concentration_band():
    # The actual fill of a real filter stays within a generous epsilon band.
    m, n, k = 3200, 600, 4
    bf = BloomFilter(m, k)
    rng = random.Random(5)
    for _ in range(n):
        bf.add(str(rng.getrandbits(64)))
    expected_zeros = expected_zero_bits(m, n, k)
    zeros = m - bf.hamming_weight
    assert abs(zeros - expected_zeros) < 0.05 * m  # eps = 0.05 band


def test_birthday_threshold():
    assert birthday_threshold(3200, 4) == math.ceil(math.sqrt(3200) / 4)
    with pytest.raises(ParameterError):
        birthday_threshold(0, 1)


def test_saturation_counts_and_log_gap():
    m, k = 600, 4
    chosen = adversarial_saturation_items(m, k)
    random_items = coupon_collector_items(m, k)
    assert chosen == 150
    assert random_items == math.floor(m * math.log(m) / k)
    # The paper's log(m) gap.
    assert random_items / chosen == pytest.approx(math.log(m), rel=0.01)


def test_scalable_compound_fpp():
    assert scalable_compound_fpp([]) == 0.0
    assert scalable_compound_fpp([0.5]) == 0.5
    assert scalable_compound_fpp([0.1, 0.1]) == pytest.approx(0.19)
    with pytest.raises(ParameterError):
        scalable_compound_fpp([1.5])


def test_empirical_fpp_on_saturated_filter():
    bf = BloomFilter(64, 2)
    bf.add_indexes(range(64))  # saturate: everything is a member
    assert empirical_fpp(lambda u: u in bf, trials=200) == 1.0


def test_empirical_fpp_on_empty_filter():
    bf = BloomFilter(1024, 4)
    assert empirical_fpp(lambda u: u in bf, trials=200) == 0.0


def test_empirical_fpp_matches_model():
    bf = BloomFilter(3200, 4)
    rng = random.Random(9)
    for _ in range(600):
        bf.add(str(rng.getrandbits(64)))
    measured = empirical_fpp(lambda u: u in bf, trials=4000, rng=random.Random(1))
    assert measured == pytest.approx(bf.current_fpp(), abs=0.03)


def test_empirical_fpp_custom_probes_and_errors():
    bf = BloomFilter(128, 2)
    assert empirical_fpp(lambda u: u in bf, probes=["a", "b"]) == 0.0
    with pytest.raises(ParameterError):
        empirical_fpp(lambda u: u in bf, probes=[])
