"""CounterArray: packing, policies, overflow/underflow telemetry."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.counters import CounterArray, OverflowPolicy
from repro.exceptions import CounterOverflowError


def test_initial_state():
    counters = CounterArray(10)
    assert len(counters) == 10
    assert counters.counter_bits == 4
    assert counters.max_value == 15
    assert counters.nonzero_count() == 0
    assert counters.values() == [0] * 10


def test_increment_decrement():
    counters = CounterArray(4)
    assert counters.increment(0) == 1
    assert counters.increment(0) == 2
    assert counters.decrement(0) == 1
    assert counters.decrement(0) == 0
    assert counters.underflow_events == 0
    assert counters.decrement(0) == 0  # floor
    assert counters.underflow_events == 1


def test_saturate_policy():
    counters = CounterArray(1, bits=2)  # max 3
    for _ in range(10):
        counters.increment(0, OverflowPolicy.SATURATE)
    assert counters.get(0) == 3
    assert counters.overflow_events == 7


def test_wrap_policy():
    counters = CounterArray(1, bits=2)
    for _ in range(4):
        counters.increment(0, OverflowPolicy.WRAP)
    assert counters.get(0) == 0  # wrapped around
    assert counters.overflow_events == 1


def test_raise_policy():
    counters = CounterArray(1, bits=1)
    counters.increment(0, OverflowPolicy.RAISE)
    with pytest.raises(CounterOverflowError):
        counters.increment(0, OverflowPolicy.RAISE)


def test_wrap_matches_modular_arithmetic():
    # k increments per item, t items: counter = t*k mod 16 -- the
    # arithmetic behind the overflow attack plan.
    counters = CounterArray(1, bits=4)
    k, t = 7, 16  # 112 = 7 * 16 == 0 mod 16
    for _ in range(t * k):
        counters.increment(0, OverflowPolicy.WRAP)
    assert counters.get(0) == (t * k) % 16 == 0


def test_support_and_values():
    counters = CounterArray(6)
    counters.increment(1)
    counters.increment(4)
    counters.increment(4)
    assert counters.support() == {1, 4}
    assert counters.nonzero_count() == 2
    assert counters.values()[4] == 2


def test_clear_keeps_event_tallies():
    counters = CounterArray(2, bits=1)
    counters.increment(0, OverflowPolicy.SATURATE)
    counters.increment(0, OverflowPolicy.SATURATE)
    counters.clear()
    assert counters.nonzero_count() == 0
    assert counters.overflow_events == 1


def test_bounds_and_construction_errors():
    counters = CounterArray(3)
    with pytest.raises(IndexError):
        counters.get(3)
    with pytest.raises(IndexError):
        counters.increment(-1)
    with pytest.raises(ValueError):
        CounterArray(0)
    with pytest.raises(ValueError):
        CounterArray(4, bits=0)
    with pytest.raises(ValueError):
        CounterArray(4, bits=9)


@given(st.lists(st.integers(min_value=0, max_value=49), max_size=200))
def test_counts_match_reference_dict(increments):
    counters = CounterArray(50, bits=8)
    reference: dict[int, int] = {}
    for i in increments:
        counters.increment(i, OverflowPolicy.SATURATE)
        reference[i] = min(255, reference.get(i, 0) + 1)
    for i, expected in reference.items():
        assert counters.get(i) == expected
