"""MurmurHash3: published test vectors, properties, and wrappers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hashing.murmur import (
    Murmur3_32,
    Murmur3_x64_128,
    fmix32,
    fmix64,
    murmur3_32,
    murmur3_x64_128,
)

# Canonical vectors (Appleby's reference implementation).
VECTORS_32 = [
    (b"", 0, 0x00000000),
    (b"", 1, 0x514E28B7),
    (b"", 0xFFFFFFFF, 0x81F16F39),
    (b"\x00\x00\x00\x00", 0, 0x2362F9DE),
    (b"hello", 0, 0x248BFA47),
    (b"The quick brown fox jumps over the lazy dog", 0, 0x2E4FF723),
]


@pytest.mark.parametrize("data,seed,expected", VECTORS_32)
def test_murmur3_32_vectors(data, seed, expected):
    assert murmur3_32(data, seed) == expected


def test_murmur3_x64_128_vector():
    h1, h2 = murmur3_x64_128(b"The quick brown fox jumps over the lazy dog", 0)
    assert (h1, h2) == (0xE34BBC7BBC071B6C, 0x7A433CA9C49A9347)


@pytest.mark.parametrize("length", range(0, 20))
def test_murmur3_32_all_tail_lengths(length):
    # Exercises every body/tail combination (block size 4).
    data = bytes(range(length))
    value = murmur3_32(data, 7)
    assert 0 <= value < 2**32
    assert murmur3_32(data, 7) == value  # deterministic


@pytest.mark.parametrize("length", range(0, 36))
def test_murmur3_128_all_tail_lengths(length):
    # Exercises every tail branch (block size 16).
    data = bytes(range(length))
    h1, h2 = murmur3_x64_128(data, 3)
    assert 0 <= h1 < 2**64 and 0 <= h2 < 2**64


def test_seed_changes_output():
    assert murmur3_32(b"item", 0) != murmur3_32(b"item", 1)
    assert murmur3_x64_128(b"item", 0) != murmur3_x64_128(b"item", 1)


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_fmix32_is_bijective_on_samples(x):
    # fmix32 is a bijection; distinct inputs map to distinct outputs
    # (checked via the inverse in test_inversion; here: in-range+stable).
    y = fmix32(x)
    assert 0 <= y < 2**32
    assert fmix32(x) == y


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_fmix64_in_range(x):
    y = fmix64(x)
    assert 0 <= y < 2**64


@given(st.binary(max_size=64), st.integers(min_value=0, max_value=2**32 - 1))
def test_murmur32_range_property(data, seed):
    assert 0 <= murmur3_32(data, seed) < 2**32


def test_wrapper_hash_object():
    fn = Murmur3_32(seed=9)
    assert fn.digest_bits == 32
    assert fn.hash_int(b"abc") == murmur3_32(b"abc", 9)
    assert fn.hash_int("abc") == murmur3_32(b"abc", 9)  # str canonicalised
    assert len(fn.digest(b"abc")) == 4


def test_wrapper_128_halves():
    fn = Murmur3_x64_128(seed=0)
    h1, h2 = fn.halves(b"xyz")
    assert fn.hash_int(b"xyz") == (h1 << 64) | h2
    assert fn.digest_bits == 128


def test_avalanche_rough():
    # Flipping one input bit should flip roughly half the output bits.
    base = murmur3_32(b"avalanche-test", 0)
    flipped = murmur3_32(b"avalanche-tesu", 0)  # last char +1
    differing = (base ^ flipped).bit_count()
    assert 8 <= differing <= 24
