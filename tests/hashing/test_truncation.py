"""Digest truncation and its security accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hashing.crypto import SHA256
from repro.hashing.truncation import (
    TruncatedHash,
    effective_bits_per_index,
    security_levels,
)


def test_truncation_keeps_prefix_bits():
    inner = SHA256()
    truncated = TruncatedHash(inner, 64)
    full = inner.digest(b"data")
    assert truncated.digest(b"data") == full[:8]
    assert truncated.digest_bits == 64


def test_truncation_masks_partial_byte():
    truncated = TruncatedHash(SHA256(), 12)  # 1.5 bytes
    digest = truncated.digest(b"data")
    assert len(digest) == 2
    assert digest[-1] & 0x0F == 0  # low 4 bits masked away


@pytest.mark.parametrize("bits", [0, -8, 257])
def test_invalid_truncation_widths(bits):
    with pytest.raises(ValueError):
        TruncatedHash(SHA256(), bits)


def test_security_levels_follow_nist_rule():
    levels = security_levels(64)
    assert levels.preimage_bits == 64
    assert levels.second_preimage_bits == 64
    assert levels.collision_bits == 32


def test_feasibility_classification():
    weak = security_levels(24).feasible(budget_log2=40)
    assert weak == {"preimage": True, "second_preimage": True, "collision": True}
    strong = security_levels(256).feasible(budget_log2=40)
    assert strong == {"preimage": False, "second_preimage": False, "collision": False}
    # Collision feasible but pre-image not: the 2^(l/2) gap.
    middle = security_levels(64).feasible(budget_log2=40)
    assert middle["collision"] and not middle["preimage"]


def test_effective_bits_per_index():
    # A Bloom filter mod m keeps only log2(m) bits -- the implicit
    # truncation driving the paper's feasibility table.
    assert effective_bits_per_index(1024) == 10
    assert effective_bits_per_index(3200) == pytest.approx(11.64, abs=0.01)
    with pytest.raises(ValueError):
        effective_bits_per_index(1)


def test_truncated_hash_security_property():
    truncated = TruncatedHash(SHA256(), 20)
    assert truncated.security.preimage_bits == 20


@given(st.integers(min_value=1, max_value=256))
def test_truncated_width_respected(bits):
    truncated = TruncatedHash(SHA256(), bits)
    value = truncated.hash_int(b"x")
    assert value < 2**bits
