"""Index strategies: salted, seeded, Kirsch-Mitzenmacher, recycling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing.crypto import MD5, SHA512
from repro.hashing.kirsch_mitzenmacher import KirschMitzenmacherStrategy, km_indexes
from repro.hashing.murmur import Murmur3_x64_128, murmur3_32
from repro.hashing.noncrypto import FNV1a64
from repro.hashing.recycling import RecyclingStrategy, bits_required, calls_required
from repro.hashing.salted import SaltedHashStrategy, SeededHashStrategy

ALL_STRATEGIES = [
    SaltedHashStrategy(SHA512()),
    SaltedHashStrategy(MD5()),
    KirschMitzenmacherStrategy(),
    RecyclingStrategy(SHA512()),
    RecyclingStrategy(MD5()),
    SeededHashStrategy(lambda seed: (lambda d: murmur3_32(d, seed)), 32, "seeded-murmur"),
]


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
def test_indexes_in_range_and_deterministic(strategy):
    indexes = strategy.indexes("http://example.com/page", 7, 1000)
    assert len(indexes) == 7
    assert all(0 <= i < 1000 for i in indexes)
    assert strategy.indexes("http://example.com/page", 7, 1000) == indexes


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
def test_str_and_bytes_agree(strategy):
    assert strategy.indexes("item", 4, 512) == strategy.indexes(b"item", 4, 512)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
def test_invalid_parameters_rejected(strategy):
    with pytest.raises(ValueError):
        strategy.indexes("x", 0, 100)
    with pytest.raises(ValueError):
        strategy.indexes("x", 4, 0)


def test_km_expansion_formula():
    assert km_indexes(5, 3, 4, 100) == (5, 8, 11, 14)
    assert km_indexes(99, 2, 3, 100) == (99, 1, 3)


def test_km_zero_stride_targets_single_position():
    # The degenerate pair the overflow attack forges.
    assert km_indexes(42, 0, 7, 100) == (42,) * 7


def test_km_uses_murmur_halves():
    strategy = KirschMitzenmacherStrategy()
    h1, h2 = Murmur3_x64_128(seed=0).halves(b"key")
    assert strategy.indexes(b"key", 3, 977) == km_indexes(h1, h2, 3, 977)
    assert strategy.pair(b"key") == (h1, h2)


def test_km_single_hash_call():
    assert KirschMitzenmacherStrategy().hash_calls(10, 1000) == 1


def test_km_from_two_hashes():
    strategy = KirschMitzenmacherStrategy.from_two_hashes(FNV1a64(), MD5())
    indexes = strategy.indexes(b"abc", 5, 333)
    assert len(indexes) == 5
    h1 = FNV1a64().hash_int(b"abc")
    h2 = MD5().hash_int(b"abc")
    assert indexes == km_indexes(h1, h2, 5, 333)


def test_salted_uses_distinct_salts():
    strategy = SaltedHashStrategy(MD5())
    # With one fixed salt the k indexes would all be equal.
    indexes = strategy.indexes(b"abc", 8, 2**20)
    assert len(set(indexes)) > 1


def test_salted_custom_salts_and_shortage():
    strategy = SaltedHashStrategy(MD5(), salts=[b"a", b"b"])
    assert len(strategy.indexes(b"x", 2, 100)) == 2
    with pytest.raises(ValueError):
        strategy.indexes(b"x", 3, 100)


def test_salted_hash_calls_is_k():
    assert SaltedHashStrategy(MD5()).hash_calls(9, 100) == 9


def test_bits_required_formula():
    assert bits_required(10, 1024) == 100  # 10 * 10
    assert bits_required(4, 3200) == 48  # 4 * 12
    with pytest.raises(ValueError):
        bits_required(0, 100)
    with pytest.raises(ValueError):
        bits_required(4, 1)


def test_calls_required_whole_windows():
    # 512-bit digest, window 10 bits -> 51 windows per call.
    assert calls_required(10, 1024, 512) == 1
    assert calls_required(52, 1024, 512) == 2
    # window wider than digest is impossible
    with pytest.raises(ValueError):
        calls_required(1, 2**129, 128)


def test_recycling_hash_calls_matches_calls_required():
    strategy = RecyclingStrategy(MD5())  # 128 bits
    # window for m=3200 is 12 bits -> 10 windows/call -> k=25 needs 3 calls.
    assert strategy.hash_calls(25, 3200) == calls_required(25, 3200, 128)


def test_recycling_needs_extra_calls_when_digest_exhausted():
    strategy = RecyclingStrategy(MD5())
    indexes = strategy.indexes(b"item", 25, 3200)
    assert len(indexes) == 25
    assert all(0 <= i < 3200 for i in indexes)


def test_recycling_rejects_too_narrow_digest():
    strategy = RecyclingStrategy(MD5())
    with pytest.raises(ValueError):
        strategy.indexes(b"item", 1, 2**140)


def test_recycling_salt_changes_indexes():
    plain = RecyclingStrategy(SHA512())
    salted = RecyclingStrategy(SHA512(), salt=b"deploy-1:")
    assert plain.indexes(b"u", 5, 4096) != salted.indexes(b"u", 5, 4096)


def test_recycling_windows_come_from_single_digest():
    # For small k the windows must be consecutive slices of one digest.
    fn = SHA512()
    strategy = RecyclingStrategy(fn)
    m = 1 << 16  # window exactly 16 bits
    digest = int.from_bytes(fn.digest(b"item"), "big")
    expected = tuple((digest >> (512 - 16 * (i + 1))) & 0xFFFF for i in range(4))
    assert strategy.indexes(b"item", 4, m) == tuple(e % m for e in expected)


@settings(max_examples=25)
@given(st.integers(min_value=1, max_value=20), st.integers(min_value=2, max_value=10000))
def test_recycling_property_range(k, m):
    strategy = RecyclingStrategy(SHA512())
    indexes = strategy.indexes(b"prop", k, m)
    assert len(indexes) == k
    assert all(0 <= i < m for i in indexes)
