"""hashlib wrappers and HMAC: correctness against the standard library."""

from __future__ import annotations

import hashlib
import hmac

import pytest

from repro.hashing.crypto import (
    CRYPTO_HASH_NAMES,
    MD5,
    SHA1,
    SHA256,
    SHA384,
    SHA512,
    HashlibHash,
    HmacHash,
    by_name,
)


@pytest.mark.parametrize("cls,algorithm,bits", [
    (MD5, "md5", 128),
    (SHA1, "sha1", 160),
    (SHA256, "sha256", 256),
    (SHA384, "sha384", 384),
    (SHA512, "sha512", 512),
])
def test_digest_matches_hashlib(cls, algorithm, bits):
    fn = cls()
    assert fn.digest_bits == bits
    assert fn.digest(b"payload") == hashlib.new(algorithm, b"payload").digest()


def test_salt_is_prepended():
    salted = SHA256(salt=b"s:")
    assert salted.digest(b"x") == hashlib.sha256(b"s:x").digest()
    assert "salt" in salted.name


def test_by_name_valid_and_invalid():
    assert by_name("sha512").digest_bits == 512
    with pytest.raises(ValueError):
        by_name("sha3-999")


def test_crypto_hash_names_ordered_by_width():
    widths = [HashlibHash(n).digest_bits for n in CRYPTO_HASH_NAMES]
    assert widths == sorted(widths)


def test_hmac_matches_stdlib():
    key = b"secret-key"
    fn = HmacHash(key, "sha1")
    assert fn.digest(b"msg") == hmac.new(key, b"msg", "sha1").digest()
    assert fn.digest_bits == 160
    assert fn.name == "hmac-sha1"


def test_hmac_key_changes_output():
    assert HmacHash(b"k1").digest(b"m") != HmacHash(b"k2").digest(b"m")


def test_hmac_rejects_empty_key():
    with pytest.raises(ValueError):
        HmacHash(b"")


def test_hash_int_and_index():
    fn = SHA1()
    value = fn.hash_int(b"abc")
    assert value == int.from_bytes(hashlib.sha1(b"abc").digest(), "big")
    assert fn.index(b"abc", 100) == value % 100


def test_index_rejects_bad_modulus():
    with pytest.raises(ValueError):
        SHA1().index(b"abc", 0)
