"""SipHash-2-4: reference vectors and keyed-PRF properties."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hashing.siphash import SipHash24, siphash24

KEY = bytes(range(16))

# First entries of the reference implementation's vectors_sip64 table
# (message = b"\x00\x01...\x{n-1}" under key 000102...0f).
REFERENCE_VECTORS = [
    (0, 0x726FDB47DD0E0E31),
    (1, 0x74F839C593DC67FD),
    (2, 0x0D6C8009D9A94F5A),
    (3, 0x85676696D7FB7E2D),
    (4, 0xCF2794E0277187B7),
    (5, 0x18765564CD99A68D),
    (6, 0xCBC9466E58FEE3CE),
    (7, 0xAB0200F58B01D137),
    (8, 0x93F5F5799A932462),
]


@pytest.mark.parametrize("length,expected", REFERENCE_VECTORS)
def test_reference_vectors(length, expected):
    assert siphash24(KEY, bytes(range(length))) == expected


@pytest.mark.parametrize("length", range(0, 24))
def test_all_tail_lengths(length):
    value = siphash24(KEY, bytes(length))
    assert 0 <= value < 2**64


def test_key_must_be_16_bytes():
    with pytest.raises(ValueError):
        siphash24(b"short", b"data")
    with pytest.raises(ValueError):
        SipHash24(b"x" * 15)


def test_different_keys_give_different_digests():
    other = bytes(range(1, 17))
    assert siphash24(KEY, b"message") != siphash24(other, b"message")


@given(st.binary(max_size=48))
def test_deterministic(data):
    assert siphash24(KEY, data) == siphash24(KEY, data)


def test_wrapper_object():
    fn = SipHash24(KEY)
    assert fn.digest_bits == 64
    assert fn.hash_int(b"abc") == siphash24(KEY, b"abc")
    assert fn.name == "siphash24"


def test_unpredictability_without_key():
    # The core of the countermeasure: same message, 256 random keys, the
    # outputs should essentially never collide.
    import random

    rng = random.Random(1)
    outputs = {
        siphash24(rng.getrandbits(128).to_bytes(16, "big"), b"victim")
        for _ in range(256)
    }
    assert len(outputs) == 256
