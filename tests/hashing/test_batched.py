"""Parity of the batched (numpy-lane) hashing with the scalar reference.

The vectorised murmur, the uint64 Kirsch-Mitzenmacher expansion and the
digest-recycling window kernel must be bit-identical with the scalar
implementations for every key length, seed and geometry -- hypothesis
drives the key shapes, fixed grids pin the geometry corners.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import accel
from repro.hashing.crypto import SHA256
from repro.hashing.kirsch_mitzenmacher import KirschMitzenmacherStrategy, km_indexes
from repro.hashing.murmur import Murmur3_x64_128, murmur3_x64_128
from repro.hashing.recycling import RecyclingStrategy

pytestmark = pytest.mark.skipif(
    accel.numpy_or_none() is None, reason="numpy backend unavailable"
)


def _batched():
    from repro.hashing import batched

    return batched


@given(
    datas=st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=40),
    seed=st.integers(min_value=0, max_value=2**64 - 1),
)
@settings(max_examples=200, deadline=None)
def test_murmur_batch_matches_scalar(datas, seed):
    h1, h2 = _batched().murmur3_x64_128_batch(datas, seed)
    expected = [murmur3_x64_128(d, seed) for d in datas]
    assert list(zip(h1.tolist(), h2.tolist())) == expected


def test_murmur_batch_covers_every_tail_length():
    """Key lengths 0..48 sweep every tail residue and 0-3 whole blocks."""
    datas = [bytes(range(n)) for n in range(49)]
    h1, h2 = _batched().murmur3_x64_128_batch(datas, seed=7)
    assert list(zip(h1.tolist(), h2.tolist())) == [
        murmur3_x64_128(d, 7) for d in datas
    ]


def test_murmur_batch_empty_input():
    h1, h2 = _batched().murmur3_x64_128_batch([])
    assert len(h1) == len(h2) == 0


@given(
    h_pairs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**64 - 1),
            st.integers(min_value=0, max_value=2**64 - 1),
        ),
        min_size=1,
        max_size=30,
    ),
    k=st.integers(min_value=1, max_value=12),
    m=st.sampled_from([2, 97, 958, 3200, 1 << 20]),
)
@settings(max_examples=200, deadline=None)
def test_km_flat_matches_scalar(h_pairs, k, m):
    np = accel.numpy_or_none()
    h1 = np.array([p[0] for p in h_pairs], dtype=np.uint64)
    h2 = np.array([p[1] for p in h_pairs], dtype=np.uint64)
    flat = _batched().km_flat_indexes(h1, h2, k, m)
    expected = [i for p in h_pairs for i in km_indexes(p[0], p[1], k, m)]
    assert flat.tolist() == expected


def test_km_flat_rejects_uint64_overflow():
    np = accel.numpy_or_none()
    ones = np.ones(1, dtype=np.uint64)
    with pytest.raises(ValueError, match="uint64"):
        _batched().km_flat_indexes(ones, ones, k=2, m=1 << 64)


@pytest.mark.parametrize("m", [958, 3200, 1 << 16])
@pytest.mark.parametrize("k", [1, 4, 7])
def test_km_strategy_flat_batch_parity(k, m):
    """The strategy's accelerated flat path equals the scalar per-item
    expansion, in item order."""
    strategy = KirschMitzenmacherStrategy(Murmur3_x64_128(seed=3).halves)
    items = [b"key-%d" % i for i in range(100)] + ["text-item", b"", b"\xff" * 33]
    with accel.use_mode("pure"):
        expected = strategy.flat_batch_indexes(items, k, m)
    with accel.use_mode("numpy"):
        fast = strategy.flat_batch_indexes(items, k, m)
    assert list(fast) == list(expected)


@pytest.mark.parametrize("m", [256, 1024, 958])
@pytest.mark.parametrize("k", [1, 4, 8])
def test_recycling_strategy_flat_batch_parity(k, m):
    strategy = RecyclingStrategy(SHA256())
    items = [b"url-%d" % i for i in range(80)] + ["scheme://host/path", b"\x00" * 5]
    with accel.use_mode("pure"):
        expected = strategy.flat_batch_indexes(items, k, m)
    with accel.use_mode("numpy"):
        fast = strategy.flat_batch_indexes(items, k, m)
    assert list(fast) == list(expected)


def test_recycling_salted_flat_batch_parity():
    """A salt disables the kernel gate; both modes still agree."""
    strategy = RecyclingStrategy(SHA256(), salt=b"pepper")
    items = [b"u%d" % i for i in range(70)]
    with accel.use_mode("pure"):
        expected = strategy.flat_batch_indexes(items, 4, 1024)
    with accel.use_mode("numpy"):
        fast = strategy.flat_batch_indexes(items, 4, 1024)
    assert list(fast) == list(expected)
