"""FNV / djb2 / sdbm / one-at-a-time: vectors and basic properties."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hashing.noncrypto import (
    FNV1a32,
    FNV1a64,
    MASK32,
    MASK64,
    OneAtATime,
    djb2,
    fnv1_32,
    fnv1_64,
    fnv1a_32,
    fnv1a_64,
    one_at_a_time,
    rotl32,
    rotl64,
    sdbm,
)


def test_fnv_offset_basis_on_empty():
    assert fnv1_32(b"") == 0x811C9DC5
    assert fnv1a_32(b"") == 0x811C9DC5
    assert fnv1_64(b"") == 0xCBF29CE484222325
    assert fnv1a_64(b"") == 0xCBF29CE484222325


def test_fnv1a_known_vectors():
    # Published FNV-1a vectors.
    assert fnv1a_32(b"a") == 0xE40C292C
    assert fnv1a_32(b"foobar") == 0xBF9CF968
    assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C
    assert fnv1a_64(b"foobar") == 0x85944171F73967E8


def test_fnv1_and_fnv1a_differ():
    assert fnv1_32(b"ab") != fnv1a_32(b"ab")
    assert fnv1_64(b"ab") != fnv1a_64(b"ab")


def test_djb2_known_value():
    # djb2("") is the initial constant 5381.
    assert djb2(b"") == 5381
    # h("a") = 5381*33 + 97
    assert djb2(b"a") == (5381 * 33 + 97) & MASK32


def test_sdbm_empty_and_single():
    assert sdbm(b"") == 0
    assert sdbm(b"a") == 97  # h = c + 0 + 0 - 0


def test_one_at_a_time_deterministic_and_seeded():
    assert one_at_a_time(b"key") == one_at_a_time(b"key")
    assert one_at_a_time(b"key", 1) != one_at_a_time(b"key", 2)


@given(st.binary(max_size=64))
def test_all_in_32bit_range(data):
    for fn in (fnv1_32, fnv1a_32, djb2, sdbm, one_at_a_time):
        assert 0 <= fn(data) <= MASK32


@given(st.binary(max_size=64))
def test_fnv64_in_range(data):
    assert 0 <= fnv1_64(data) <= MASK64
    assert 0 <= fnv1a_64(data) <= MASK64


@pytest.mark.parametrize("r", [0, 1, 13, 31, 32, 45])
def test_rotl32_inverse_pairs(r):
    x = 0x12345678
    assert rotl32(rotl32(x, r), (32 - r) % 32) == x


@pytest.mark.parametrize("r", [0, 1, 27, 33, 63, 64])
def test_rotl64_inverse_pairs(r):
    x = 0x0123456789ABCDEF
    assert rotl64(rotl64(x, r), (64 - r) % 64) == x


def test_wrapper_objects():
    assert FNV1a32().hash_int(b"foobar") == 0xBF9CF968
    assert FNV1a64().hash_int(b"foobar") == 0x85944171F73967E8
    oaat = OneAtATime(seed=5)
    assert oaat.hash_int(b"x") == one_at_a_time(b"x", 5)
    assert oaat.digest_bits == 32
