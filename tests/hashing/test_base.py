"""HashFunction/CallableHash/IndexStrategy base machinery."""

from __future__ import annotations

import pytest

from repro.hashing.base import (
    CallableHash,
    digest_to_int,
    ensure_bytes,
    int_to_digest,
)


def test_ensure_bytes_identity_and_utf8():
    assert ensure_bytes(b"raw") == b"raw"
    assert ensure_bytes("héllo") == "héllo".encode("utf-8")


def test_ensure_bytes_rejects_other_types():
    with pytest.raises(TypeError):
        ensure_bytes(123)
    with pytest.raises(TypeError):
        ensure_bytes(None)


def test_digest_int_round_trip():
    raw = b"\x01\x02\x03\x04"
    assert int_to_digest(digest_to_int(raw), 4) == raw
    assert digest_to_int(raw) == 0x01020304


def test_callable_hash_masks_to_width():
    fn = CallableHash(lambda data: 0x1FFFF, digest_bits=16, name="mask-test")
    assert fn.hash_int(b"x") == 0xFFFF
    assert fn.digest(b"x") == b"\xff\xff"
    assert fn.digest_size == 2


def test_callable_hash_rejects_bad_width():
    with pytest.raises(ValueError):
        CallableHash(lambda d: 0, digest_bits=0, name="bad")


def test_index_modulo():
    fn = CallableHash(lambda data: 1234, digest_bits=32, name="const")
    assert fn.index(b"anything", 100) == 34
    with pytest.raises(ValueError):
        fn.index(b"anything", -1)


def test_batch_indexes_matches_single():
    from repro.hashing.salted import SaltedHashStrategy
    from repro.hashing.crypto import MD5

    strategy = SaltedHashStrategy(MD5())
    items = ["a", "b", "c"]
    batch = strategy.batch_indexes(items, 3, 50)
    assert batch == [strategy.indexes(i, 3, 50) for i in items]
