"""MurmurHash3 inversion: the constant-time forgery primitive."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InversionError
from repro.hashing.inversion import (
    fmix32_inverse,
    fmix64_inverse,
    invert_murmur3_32,
    invert_murmur3_x64_128,
    unxorshift_right,
)
from repro.hashing.murmur import fmix32, fmix64, murmur3_32, murmur3_x64_128


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_fmix32_round_trip(x):
    assert fmix32_inverse(fmix32(x)) == x
    assert fmix32(fmix32_inverse(x)) == x


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_fmix64_round_trip(x):
    assert fmix64_inverse(fmix64(x)) == x


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=31),
)
def test_unxorshift_right(x, shift):
    assert unxorshift_right(x ^ (x >> shift), shift, 32) == x


def test_unxorshift_rejects_bad_shift():
    with pytest.raises(ValueError):
        unxorshift_right(1, 0, 32)
    with pytest.raises(ValueError):
        unxorshift_right(1, 32, 32)


@settings(max_examples=50)
@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_invert_murmur32_hits_any_target(target, seed):
    preimage = invert_murmur3_32(target, seed)
    assert len(preimage) == 4
    assert murmur3_32(preimage, seed) == target


def test_invert_murmur32_with_prefix():
    prefix = b"http://evil.co/a"  # 16 bytes, multiple of 4
    preimage = invert_murmur3_32(0xCAFEBABE, seed=11, prefix=prefix)
    assert preimage.startswith(prefix)
    assert murmur3_32(preimage, 11) == 0xCAFEBABE


def test_invert_murmur32_rejects_misaligned_prefix():
    with pytest.raises(InversionError):
        invert_murmur3_32(1, prefix=b"abc")


@settings(max_examples=50)
@given(
    st.integers(min_value=0, max_value=2**64 - 1),
    st.integers(min_value=0, max_value=2**64 - 1),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_invert_murmur128_hits_any_target_pair(t1, t2, seed):
    preimage = invert_murmur3_x64_128(t1, t2, seed)
    assert len(preimage) == 16
    assert murmur3_x64_128(preimage, seed) == (t1, t2)


def test_invert_murmur128_with_prefix():
    prefix = b"http://evil.tld/"  # 16 bytes
    preimage = invert_murmur3_x64_128(7, 0, seed=0, prefix=prefix)
    assert preimage.startswith(prefix)
    assert murmur3_x64_128(preimage, 0) == (7, 0)


def test_invert_murmur128_rejects_misaligned_prefix():
    with pytest.raises(InversionError):
        invert_murmur3_x64_128(1, 2, prefix=b"0123456789")


def test_second_preimage_of_real_item():
    # Forge a different input with the same 128-bit hash: the Bloom-level
    # second pre-image that erases victims from Dablooms.
    victim = b"http://malicious.example/phishing-page"
    target = murmur3_x64_128(victim, 0)
    forged = invert_murmur3_x64_128(*target, seed=0)
    assert forged != victim
    assert murmur3_x64_128(forged, 0) == target


def test_distinct_variants_give_distinct_preimages():
    # h1 = c + j*m for varying j: infinitely many distinct single-counter keys.
    m = 958
    keys = {invert_murmur3_x64_128(5 + j * m, 0, seed=0) for j in range(50)}
    assert len(keys) == 50
