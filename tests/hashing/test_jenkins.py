"""lookup3 (hashlittle): reference self-test values and properties."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hashing.jenkins import Lookup3, hashlittle, hashlittle2


def test_empty_returns_initval_constant():
    # length 0: a=b=c = 0xdeadbeef + 0 + initval, returned as-is.
    assert hashlittle(b"", 0) == 0xDEADBEEF
    assert hashlittle(b"", 1) == 0xDEADBEF0


def test_reference_phrase_vectors():
    # From the driver in Jenkins' lookup3.c.
    phrase = b"Four score and seven years ago"
    assert hashlittle(phrase, 0) == 0x17770551
    assert hashlittle(phrase, 1) == 0xCD628161


@pytest.mark.parametrize("length", range(0, 30))
def test_all_tail_lengths(length):
    value = hashlittle(bytes(range(length)), 5)
    assert 0 <= value < 2**32


def test_hashlittle2_primary_matches_hashlittle():
    data = b"some test data for lookup3"
    c, b = hashlittle2(data, 7, 0)
    assert c == hashlittle(data, 7)
    assert b != c  # the secondary hash is distinct in general


def test_initval2_affects_output():
    data = b"abc"
    assert hashlittle2(data, 0, 0) != hashlittle2(data, 0, 1)


@given(st.binary(max_size=64), st.integers(min_value=0, max_value=2**32 - 1))
def test_deterministic_and_in_range(data, seed):
    value = hashlittle(data, seed)
    assert 0 <= value < 2**32
    assert hashlittle(data, seed) == value


def test_wrapper_object():
    fn = Lookup3(seed=3)
    assert fn.digest_bits == 32
    assert fn.hash_int(b"abc") == hashlittle(b"abc", 3)
