"""Dablooms service and its three attacks."""

from __future__ import annotations

import pytest

from repro.apps.dablooms.attack import (
    DabloomsOverflowAttack,
    DabloomsPollutionAttack,
    SecondPreimageDeletion,
)
from repro.apps.dablooms.service import ShorteningService
from repro.exceptions import ParameterError


# --- service -------------------------------------------------------------------

def test_shorten_clean_url():
    service = ShorteningService(slice_capacity=100)
    result = service.shorten("http://fine.example/")
    assert result.allowed and result.short_code.startswith("bit.ly/")
    assert service.shortened == 1


def test_reported_url_is_refused():
    service = ShorteningService(slice_capacity=100)
    service.report_malicious("http://phish.example/steal")
    result = service.shorten("http://phish.example/steal")
    assert not result.allowed
    assert result.flagged_malicious
    assert service.refused == 1


def test_retract_unblocks():
    service = ShorteningService(slice_capacity=100)
    service.report_malicious("http://phish.example/x")
    assert service.retract_malicious("http://phish.example/x")
    assert service.shorten("http://phish.example/x").allowed


def test_shorten_requires_url():
    service = ShorteningService(slice_capacity=10)
    with pytest.raises(ParameterError):
        service.shorten("")


def test_short_codes_unique():
    service = ShorteningService(slice_capacity=10)
    codes = {service.shorten(f"http://u{i}.example/").short_code for i in range(50)}
    assert len(codes) == 50


# --- pollution (Fig. 8 mechanics at small scale) --------------------------------

def test_pollution_raises_compound_fpp():
    polluted_service = ShorteningService(slice_capacity=150, f0=0.05)
    polluted = DabloomsPollutionAttack(polluted_service, seed=1).run(
        total_slices=2, polluted_last=2
    )
    honest_service = ShorteningService(slice_capacity=150, f0=0.05)
    honest = DabloomsPollutionAttack(honest_service, seed=1).run(
        total_slices=2, polluted_last=0
    )
    assert polluted.final_fpp > 2 * honest.final_fpp
    assert polluted.crafting_trials > 0
    assert honest.crafting_trials == 0


def test_partial_pollution_hits_only_last_slices():
    service = ShorteningService(slice_capacity=120, f0=0.05)
    report = DabloomsPollutionAttack(service, seed=2).run(
        total_slices=3, polluted_last=1
    )
    assert report.polluted_slices == [2]
    slices = service.blocklist.slices
    # The polluted slice carries exactly capacity*k nonzero counters.
    assert slices[2].hamming_weight == 120 * slices[2].k
    assert slices[0].hamming_weight < 120 * slices[0].k


def test_pollution_validation():
    service = ShorteningService(slice_capacity=10)
    with pytest.raises(ParameterError):
        DabloomsPollutionAttack(service).run(total_slices=2, polluted_last=3)


# --- second pre-image deletion ---------------------------------------------------

def test_doppelganger_shares_index_set():
    service = ShorteningService(slice_capacity=50)
    attack = SecondPreimageDeletion(service)
    victim = "http://really-bad.example/malware"
    forged = attack.forge_doppelganger(victim)
    blocklist = service.blocklist
    assert forged != victim.encode()
    assert blocklist.strategy.indexes(forged, 7, 1000) == blocklist.strategy.indexes(
        victim, 7, 1000
    )


def test_erase_victim_without_knowing_insertions():
    service = ShorteningService(slice_capacity=50)
    victim = "http://really-bad.example/phish"
    service.report_malicious(victim)
    assert service.is_blocked(victim)
    attack = SecondPreimageDeletion(service)
    assert attack.erase(victim)
    assert service.shorten(victim).allowed  # malicious URL now sails through


def test_second_preimage_requires_km_strategy():
    service = ShorteningService(slice_capacity=10)
    service.blocklist.strategy = object()  # break the expected pipeline
    with pytest.raises(ParameterError):
        SecondPreimageDeletion(service)


# --- counter overflow -------------------------------------------------------------

def test_overflow_marks_slice_full_but_empty():
    service = ShorteningService(slice_capacity=64)
    report = DabloomsOverflowAttack(service).run()
    assert report.items_inserted == 64
    assert report.nonzero_counters_after <= 1
    assert report.lost_keys >= 60
    blocklist = service.blocklist
    assert blocklist.slice_fill(0) == 64  # "full" by the insertion counter
    # Next report scales to a brand-new slice: memory wasted.
    service.report_malicious("http://next.example/")
    assert blocklist.slice_count == 2
