"""The blinding and ghost-hiding attacks against the spider."""

from __future__ import annotations

from repro.apps.scrapy.attack import BlindingAttack, GhostHidingAttack
from repro.apps.scrapy.dupefilter import BloomDupeFilter
from repro.apps.scrapy.spider import Spider
from repro.apps.scrapy.webgraph import WebGraph


def test_blinding_reduces_victim_coverage():
    victim = WebGraph.random_site("victim.example", 200, seed=11)
    attack = BlindingAttack(
        dupefilter_capacity=600, dupefilter_error_rate=0.05, seed=0xBAD
    )
    report = attack.run(victim, n_links=500)
    assert report.victim_coverage_baseline == 1.0
    assert report.victim_coverage_attacked < report.victim_coverage_baseline
    assert report.blinded_fraction > 0.02
    assert report.filter_fpp_after_attack > 0.01


def test_blinding_scales_with_link_count():
    victim = WebGraph.random_site("victim.example", 150, seed=12)
    small = BlindingAttack(400, 0.05, seed=1).run(victim, n_links=100)
    large = BlindingAttack(400, 0.05, seed=1).run(victim, n_links=500)
    assert large.filter_fpp_after_attack > small.filter_fpp_after_attack
    assert large.victim_coverage_attacked <= small.victim_coverage_attacked + 0.02


def test_adversary_site_links_pollute_shadow_exactly():
    attack = BlindingAttack(300, 0.05, seed=13)
    site, trials = attack.build_adversary_site(n_links=50)
    assert trials >= 50
    root_links = site.links_of(attack.root_url)
    assert len(root_links) == 50
    # Replay: inserting root + links in order sets k fresh bits each time.
    reference = BloomDupeFilter(300, 0.05)
    reference.seen(attack.root_url)
    weight_before = reference.filter.hamming_weight
    for link in root_links:
        reference.seen(link)
    added = reference.filter.hamming_weight - weight_before
    assert added == 50 * reference.filter.k


def test_exact_dupefilter_immune_to_blinding():
    # Ablation: the same adversary site cannot blind the fingerprint filter.
    from repro.apps.scrapy.dupefilter import FingerprintSetDupeFilter

    victim = WebGraph.random_site("victim.example", 100, seed=14)
    attack = BlindingAttack(400, 0.05, seed=2)
    site, _ = attack.build_adversary_site(n_links=300)
    world = WebGraph().merge(site).merge(victim)
    spider = Spider(world, FingerprintSetDupeFilter())
    spider.crawl([attack.root_url])
    stats = spider.crawl([victim.urls()[0]])
    assert stats.coverage_of(victim.urls()) == 1.0


def test_ghost_hiding_end_to_end():
    world = WebGraph.random_site("public.example", 120, seed=15)
    df = BloomDupeFilter(800, 0.05)
    attack = GhostHidingAttack(df, seed=0x6057)
    report = attack.run(world, crawl_first=["http://public.example/"])
    assert not report.ghost_crawled  # the spider believed it had seen it
    assert report.decoys_crawled == len(report.decoys) + 1  # root + decoys
    assert report.crafting_trials > 0


def test_ghost_stays_hidden_after_more_crawling():
    # Bits only get set: a ghost forged now is a false positive forever.
    world = WebGraph.random_site("public.example", 60, seed=16)
    df = BloomDupeFilter(500, 0.05)
    attack = GhostHidingAttack(df, seed=3)
    report = attack.run(world, crawl_first=["http://public.example/"])
    more = WebGraph.random_site("later.example", 40, seed=17)
    world.merge(more)
    spider = Spider(world, df)
    spider.crawl(["http://later.example/"])
    assert df.seen(report.ghost_url) is True  # still "seen"
