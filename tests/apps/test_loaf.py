"""LOAF: the untrusted-maintainer boundary case."""

from __future__ import annotations

import pytest

from repro.apps.loaf import LoafMessage, LoafReceiver, forge_all_ones_filter
from repro.core.bloom import BloomFilter
from repro.exceptions import ParameterError


def honest_message(friends: list[str]) -> LoafMessage:
    book = BloomFilter(1024, 4)
    for friend in friends:
        book.add(friend)
    return LoafMessage(
        sender="honest@mail.example",
        address_book_filter=book.to_bytes(),
        filter_m=1024,
        filter_k=4,
    )


def test_honest_filter_whitelists_friends_only():
    receiver = LoafReceiver()
    message = honest_message(["alice@x.example", "bob@y.example"])
    assert receiver.is_whitelisted("alice@x.example", message)
    assert not receiver.is_whitelisted("mallory@spam.example", message)


def test_forged_filter_whitelists_the_world():
    receiver = LoafReceiver()
    forged = forge_all_ones_filter()
    addresses = [f"victim-{i}@anywhere.example" for i in range(100)]
    assert all(receiver.is_whitelisted(a, forged) for a in addresses)
    assert receiver.whitelist_hits == 100


def test_forged_filter_is_fully_saturated():
    forged = forge_all_ones_filter(m=64, k=2)
    restored = BloomFilter.from_bytes(64, 2, forged.address_book_filter)
    assert restored.bits.hamming_weight() == 64


def test_forge_validation():
    with pytest.raises(ParameterError):
        forge_all_ones_filter(m=0)
