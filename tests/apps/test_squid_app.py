"""Squid simulation: proxies, digests, sibling protocol, the attack."""

from __future__ import annotations

import pytest

from repro.apps.squid.attack import CacheDigestAttack
from repro.apps.squid.httpsim import OriginServer, SimClock
from repro.apps.squid.proxy import SquidProxy
from repro.apps.squid.siblings import make_sibling_pair
from repro.exceptions import ParameterError


def test_clock_advances_monotonically():
    clock = SimClock()
    clock.advance(5)
    clock.advance(0)
    assert clock.now_ms == 5
    with pytest.raises(ParameterError):
        clock.advance(-1)


def test_origin_serves_deterministic_content():
    origin = OriginServer()
    a = origin.fetch("http://x.example/")
    assert a == origin.fetch("http://x.example/")
    assert origin.requests == 2


def test_local_cache_hit_is_free():
    pair = make_sibling_pair()
    pair.proxy1.client_fetch("http://page.example/")
    outcome = pair.proxy1.client_fetch("http://page.example/")
    assert outcome.source == "local"
    assert outcome.latency_ms == 0


def test_miss_goes_to_origin_without_digests():
    pair = make_sibling_pair()
    outcome = pair.proxy2.client_fetch("http://fresh.example/")
    assert outcome.source == "origin"
    assert outcome.latency_ms == 50.0


def test_true_sibling_hit_saves_origin_fetch():
    pair = make_sibling_pair()
    pair.proxy1.client_fetch("http://shared.example/")
    pair.exchange_digests()
    outcome = pair.proxy2.client_fetch("http://shared.example/")
    assert outcome.source == "sibling"
    assert outcome.latency_ms == 10.0  # one RTT, no origin trip
    assert pair.proxy2.stats.sibling_hits == 1


def test_digest_false_hit_wastes_a_round_trip():
    pair = make_sibling_pair()
    for i in range(60):
        pair.proxy1.client_fetch(f"http://fill-{i}.example/")
    pair.exchange_digests()
    # Find a URL the digest wrongly claims (dense digest -> false positives).
    digest = pair.proxy1.digest
    probe = None
    for i in range(100_000):
        candidate = f"http://probe-{i}.example/"
        if candidate in digest and candidate not in pair.proxy1.cache:
            probe = candidate
            break
    assert probe is not None, "no digest false positive found (unexpected)"
    outcome = pair.proxy2.client_fetch(probe)
    assert outcome.source == "origin"
    assert outcome.sibling_false_hits == 1
    assert outcome.latency_ms == 60.0  # wasted RTT + origin


def test_proxy_cannot_sibling_itself():
    pair = make_sibling_pair()
    with pytest.raises(ParameterError):
        pair.proxy1.add_sibling(pair.proxy1)


def test_digest_rebuild_reflects_cache():
    pair = make_sibling_pair()
    pair.proxy1.client_fetch("http://one.example/")
    digest = pair.proxy1.rebuild_digest()
    assert "http://one.example/" in digest
    assert digest.m == 5 * 1 + 7


def test_stats_false_hit_rate():
    pair = make_sibling_pair()
    assert pair.proxy2.stats.false_hit_rate() == 0.0


# --- the Section 7 attack -----------------------------------------------------

def test_attack_reproduces_paper_shape():
    attack = CacheDigestAttack(clean_urls=51, added_urls=100, probes=100, seed=7)
    polluted, control = attack.run()
    assert polluted.digest_bits == 762  # 5*(51+100)+7, the paper's size
    assert polluted.false_hit_rate > 2 * control.false_hit_rate
    assert polluted.added_latency_ms == polluted.false_hits * 10.0
    assert control.polluted is False and polluted.polluted is True


def test_attack_pollution_sets_fresh_bits():
    attack = CacheDigestAttack(clean_urls=20, added_urls=30, probes=10, seed=8)
    report = attack.run_scenario(polluted=True)
    # 30 crafted URLs x 4 fresh bits on top of the clean-cache weight.
    clean_only = attack.run_scenario(polluted=False)
    assert report.digest_weight > clean_only.digest_weight


def test_attack_validation():
    with pytest.raises(ParameterError):
        CacheDigestAttack(clean_urls=-1)
