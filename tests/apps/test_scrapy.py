"""Scrapy simulation: web graph, dupe filters, spider mechanics."""

from __future__ import annotations

import pytest

from repro.apps.scrapy.dupefilter import (
    BloomDupeFilter,
    FingerprintSetDupeFilter,
    SCRAPY_FINGERPRINT_BYTES,
)
from repro.apps.scrapy.spider import Spider
from repro.apps.scrapy.webgraph import WebGraph
from repro.exceptions import ParameterError


# --- web graph ----------------------------------------------------------------

def test_random_site_reachable_and_sized():
    site = WebGraph.random_site("victim.example", 100, seed=1)
    assert len(site) == 100
    root = site.urls()[0]
    assert root == "http://victim.example/"
    # BFS from the root reaches every page (tree links guarantee it).
    seen = {root}
    frontier = [root]
    while frontier:
        url = frontier.pop()
        for link in site.links_of(url):
            if link not in seen:
                seen.add(link)
                frontier.append(link)
    assert seen == set(site.urls())


def test_random_site_deterministic():
    a = WebGraph.random_site("x.example", 30, seed=7)
    b = WebGraph.random_site("x.example", 30, seed=7)
    assert a.urls() == b.urls()
    assert all(a.links_of(u) == b.links_of(u) for u in a.urls())


def test_links_of_unknown_is_empty():
    assert WebGraph().links_of("http://nowhere.example/") == []


def test_merge():
    a = WebGraph()
    a.add_page("http://a.example/", links=["http://a.example/1"])
    b = WebGraph()
    b.add_page("http://b.example/")
    a.merge(b)
    assert "http://b.example/" in a
    assert len(a) == 2


def test_random_site_validation():
    with pytest.raises(ParameterError):
        WebGraph.random_site("x", 0)


# --- dupe filters ---------------------------------------------------------------

def test_fingerprint_filter_exact():
    df = FingerprintSetDupeFilter()
    assert df.seen("http://a.example/") is False
    assert df.seen("http://a.example/") is True
    assert df.seen("http://b.example/") is False
    assert df.marked == 2
    assert df.memory_bytes() == 2 * SCRAPY_FINGERPRINT_BYTES


def test_bloom_filter_check_and_mark():
    df = BloomDupeFilter(capacity=100, error_rate=0.01)
    assert df.seen("http://a.example/") is False
    assert df.seen("http://a.example/") is True


def test_bloom_filter_memory_far_smaller():
    exact = FingerprintSetDupeFilter()
    bloom = BloomDupeFilter(capacity=10_000, error_rate=0.001)
    for i in range(10_000):
        exact.seen(f"http://page-{i}.example/")
    # The paper's motivation: Bloom dedup is an order of magnitude smaller.
    assert bloom.memory_bytes() < exact.memory_bytes() / 10


# --- spider ---------------------------------------------------------------------

def test_full_crawl_with_exact_filter():
    site = WebGraph.random_site("v.example", 80, seed=2)
    spider = Spider(site, FingerprintSetDupeFilter())
    stats = spider.crawl([site.urls()[0]])
    assert stats.pages_crawled == 80
    assert stats.coverage_of(site.urls()) == 1.0
    assert stats.skipped_as_duplicate > 0  # cross links hit the filter


def test_crawl_respects_max_pages():
    site = WebGraph.random_site("v.example", 60, seed=3)
    spider = Spider(site, FingerprintSetDupeFilter(), max_pages=10)
    stats = spider.crawl([site.urls()[0]])
    assert stats.pages_crawled == 10


def test_seen_start_url_is_skipped():
    site = WebGraph.random_site("v.example", 10, seed=4)
    df = FingerprintSetDupeFilter()
    df.seen(site.urls()[0])  # pre-mark the root
    spider = Spider(site, df)
    stats = spider.crawl([site.urls()[0]])
    assert stats.pages_crawled == 0
    assert stats.skipped_as_duplicate == 1


def test_crawl_twice_is_idempotent():
    site = WebGraph.random_site("v.example", 25, seed=5)
    spider = Spider(site, FingerprintSetDupeFilter())
    first = spider.crawl([site.urls()[0]])
    second = spider.crawl([site.urls()[0]])
    assert first.pages_crawled == 25
    assert second.pages_crawled == 0


def test_coverage_requires_urls():
    site = WebGraph.random_site("v.example", 5, seed=6)
    spider = Spider(site, FingerprintSetDupeFilter())
    stats = spider.crawl([site.urls()[0]])
    with pytest.raises(ParameterError):
        stats.coverage_of([])


def test_invalid_max_pages():
    with pytest.raises(ParameterError):
        Spider(WebGraph(), FingerprintSetDupeFilter(), max_pages=0)
