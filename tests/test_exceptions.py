"""Exception hierarchy contracts."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    CapacityError,
    CounterOverflowError,
    CraftingBudgetExceeded,
    InversionError,
    ParameterError,
    ReproError,
)


@pytest.mark.parametrize(
    "exc_type",
    [ParameterError, CapacityError, CraftingBudgetExceeded, CounterOverflowError, InversionError],
)
def test_all_derive_from_repro_error(exc_type):
    assert issubclass(exc_type, ReproError)


def test_parameter_error_is_value_error():
    # Library misuse should be catchable as plain ValueError too.
    assert issubclass(ParameterError, ValueError)
    with pytest.raises(ValueError):
        raise ParameterError("bad m")


def test_crafting_budget_carries_trials():
    exc = CraftingBudgetExceeded("gave up", trials=123)
    assert exc.trials == 123
    assert "gave up" in str(exc)


def test_library_raises_catchable_base():
    from repro.core.bloom import BloomFilter

    with pytest.raises(ReproError):
        BloomFilter(0, 1)
