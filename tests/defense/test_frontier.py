"""The budget-frontier calibration layer: thrash accounting, the
cheapest-winning-purse search, and the replay probe end to end."""

from __future__ import annotations

from concurrent.futures import Future

import pytest

from repro.defense.frontier import (
    FrontierProbe,
    ProbePool,
    FrontierResult,
    FrontierWorkload,
    cheapest_winning_budget,
    minimise_winning_trials,
    replay_probe,
    thrash_events,
)
from repro.exceptions import ParameterError
from repro.service.config import AttackBudgetConfig, ServiceConfig
from repro.service.gateway import RotationEvent


def event(shard_id: int, op_epoch: int) -> RotationEvent:
    return RotationEvent(
        shard_id=shard_id,
        retired_weight=0,
        retired_fill=0.5,
        retired_insertions=0,
        op_epoch=op_epoch,
    )


# ----------------------------------------------------------------------
# thrash_events
# ----------------------------------------------------------------------


def test_thrash_counts_same_shard_pairs_below_the_gap():
    log = [event(0, 100), event(0, 250), event(0, 300), event(0, 600)]
    assert thrash_events(log, 100) == 1  # only 250->300
    assert thrash_events(log, 200) == 2  # 100->250 joins
    assert thrash_events(log, 50) == 0
    assert thrash_events([], 100) == 0


def test_thrash_never_pairs_across_shards():
    log = [event(0, 100), event(1, 110), event(0, 120), event(1, 130)]
    # Per shard the gaps are 20: two thrash events, not three.
    assert thrash_events(log, 50) == 2


def test_thrash_chain_counts_every_close_pair():
    log = [event(2, 10), event(2, 20), event(2, 30)]
    assert thrash_events(log, 100) == 2
    with pytest.raises(ParameterError):
        thrash_events(log, 0)


# ----------------------------------------------------------------------
# minimise_winning_trials (pure search over a fake predicate)
# ----------------------------------------------------------------------


def test_search_brackets_the_cheapest_win():
    probes: list[int] = []

    def win(trials: int) -> bool:
        probes.append(trials)
        return trials >= 700

    cheapest = minimise_winning_trials(win, floor=16, ceiling=4096, resolution=16)
    assert cheapest is not None
    assert 700 <= cheapest < 700 + 16 + 1
    # Doubling first, then bisection: never probes above the first win.
    assert max(probes) <= 1024


def test_search_floor_win_and_ceiling_loss():
    assert minimise_winning_trials(lambda t: True, 16, 4096, 16) == 16
    assert minimise_winning_trials(lambda t: False, 16, 4096, 16) is None


def test_search_probes_the_exact_ceiling():
    seen: list[int] = []

    def win(trials: int) -> bool:
        seen.append(trials)
        return False

    assert minimise_winning_trials(win, 16, 5000, 16) is None
    assert seen[-1] == 5000  # the odd ceiling itself is probed last


def test_search_validates_bounds():
    for bad in (
        lambda: minimise_winning_trials(lambda t: True, 0, 100, 16),
        lambda: minimise_winning_trials(lambda t: True, 200, 100, 16),
        lambda: minimise_winning_trials(lambda t: True, 16, 100, 0),
    ):
        with pytest.raises(ParameterError):
            bad()


# ----------------------------------------------------------------------
# FrontierResult ordering
# ----------------------------------------------------------------------


def _result(trials: int | None) -> FrontierResult:
    budget = (
        AttackBudgetConfig(max_trials=trials, strategy="adaptive")
        if trials is not None
        else None
    )
    probe = (
        FrontierProbe(
            budget=budget,
            ghost_queries=10,
            ghost_hits=10,
            trials_spent=trials,
            rotations=0,
            rotations_suppressed=0,
            thrash_events=0,
            won=True,
        )
        if budget is not None
        else None
    )
    return FrontierResult(
        policy="p", target_hits=10, cheapest=budget, winning=probe
    )


def test_beats_treats_beyond_sweep_as_supremum():
    assert _result(100).beats(_result(10))
    assert not _result(10).beats(_result(100))
    assert not _result(100).beats(_result(100))
    assert _result(None).beats(_result(100))
    assert not _result(100).beats(_result(None))
    assert not _result(None).beats(_result(None))  # incomparable
    assert _result(None).cheapest_trials is None
    assert _result(64).cheapest_trials == 64


# ----------------------------------------------------------------------
# The replay probe and full search, miniature end to end
# ----------------------------------------------------------------------

_TINY = FrontierWorkload(
    honest_clients=2,
    honest_inserts=160,
    honest_queries=60,
    ghost_queries=24,
    min_fill=0.2,
    max_trials=8_000,
)


def _config(policy: str) -> ServiceConfig:
    return ServiceConfig(
        shards=2,
        shard_m=256,
        shard_k=4,
        rotation_threshold=None,
        rotation_policy=policy,
    )


def test_replay_probe_reports_the_campaign():
    probe = replay_probe(
        _config("fill:0.95"),
        AttackBudgetConfig(max_trials=4_000, strategy="adaptive"),
        target_hits=12,
        workload=_TINY,
        seed=3,
    )
    assert probe.ghost_queries > 0
    assert 0 <= probe.ghost_hits <= probe.ghost_queries
    assert probe.trials_spent <= 4_000
    assert probe.won == (probe.ghost_hits >= 12)
    with pytest.raises(ParameterError):
        replay_probe(
            _config("never"),
            AttackBudgetConfig(max_trials=10),
            target_hits=0,
            workload=_TINY,
        )


def test_cheapest_winning_budget_finds_a_finite_frontier():
    # Against a never-rotating defence the pool replays freely: some
    # modest purse must win, and the probes must be recorded.
    result = cheapest_winning_budget(
        _config("never"),
        target_hits=12,
        workload=_TINY,
        seed=3,
        floor=8,
        ceiling=8_000,
        resolution=8,
    )
    assert result.cheapest is not None
    assert result.cheapest.strategy == "adaptive"
    assert result.winning is not None and result.winning.won
    assert result.cheapest_trials <= 8_000
    assert len(result.probes) >= 1
    assert result.policy == "never"


# ----------------------------------------------------------------------
# The pooled search: same rungs, same decisions as the serial walk
# ----------------------------------------------------------------------


class _FakePool:
    """ProbePool stand-in answering probes deterministically, at once."""

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self.submitted: list[int] = []

    def probe(self, config, budget, target_hits, *, workload, seed, thrash_gap):
        self.submitted.append(budget.max_trials)
        future: Future = Future()
        future.set_result(_fake_probe(budget, budget.max_trials >= self.threshold))
        return future


def _fake_probe(budget: AttackBudgetConfig, won: bool) -> FrontierProbe:
    return FrontierProbe(
        budget=budget,
        ghost_queries=1,
        ghost_hits=int(won),
        trials_spent=budget.max_trials,
        rotations=0,
        rotations_suppressed=0,
        thrash_events=0,
        won=won,
    )


@pytest.mark.parametrize("threshold", [10, 100, 700, 3000, 10**6])
def test_pooled_search_matches_serial_given_same_outcomes(
    monkeypatch, threshold: int
):
    """With identical probe outcomes the pooled search records exactly
    the serial search's rung sequence and returns the same price."""

    def fake_replay(config, budget, target_hits, workload=None, seed=0, thrash_gap=200):
        return _fake_probe(budget, budget.max_trials >= threshold)

    monkeypatch.setattr("repro.defense.frontier.replay_probe", fake_replay)
    kwargs = dict(
        target_hits=12, workload=_TINY, seed=3, floor=16, ceiling=4096, resolution=16
    )
    serial = cheapest_winning_budget(_config("never"), **kwargs)
    pooled = cheapest_winning_budget(
        _config("never"), **kwargs, pool=_FakePool(threshold)
    )
    assert pooled.cheapest_trials == serial.cheapest_trials
    assert [(p.budget.max_trials, p.won) for p in pooled.probes] == [
        (p.budget.max_trials, p.won) for p in serial.probes
    ]


def test_pooled_search_submits_the_whole_ladder_up_front():
    pool = _FakePool(threshold=100)
    result = cheapest_winning_budget(
        _config("never"),
        target_hits=12,
        workload=_TINY,
        seed=3,
        floor=16,
        ceiling=4096,
        resolution=16,
        pool=pool,
    )
    # Ladder 16..4096 fanned out in one burst before any bisection probe.
    ladder = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
    assert pool.submitted[: len(ladder)] == ladder
    # Rungs past the first winner (128) are submitted but never recorded.
    recorded = [p.budget.max_trials for p in result.probes]
    assert recorded[:4] == [16, 32, 64, 128]
    assert all(t <= 128 for t in recorded)
    assert result.cheapest_trials is not None


def test_pooled_search_validates_bounds():
    pool = _FakePool(threshold=100)
    # (resolution=0 is falsy and coerced to the default, as serially.)
    for floor, ceiling in ((0, 100), (200, 100)):
        with pytest.raises(ParameterError):
            cheapest_winning_budget(
                _config("never"),
                target_hits=12,
                workload=_TINY,
                floor=floor,
                ceiling=ceiling,
                resolution=16,
                pool=pool,
            )


def test_probe_pool_validates_and_closes():
    with pytest.raises(ParameterError):
        ProbePool(workers=0)
    with ProbePool(workers=1) as pool:
        assert pool.workers == 1
        future = pool.submit(max, 3, 5)
        assert future.result() == 5


def test_probe_pool_replays_end_to_end():
    # A real worker process runs the same seeded replay the serial path
    # would; the probe comes back well-formed.
    with ProbePool(workers=1) as pool:
        future = pool.probe(
            _config("fill:0.95"),
            AttackBudgetConfig(max_trials=4_000, strategy="adaptive"),
            12,
            workload=_TINY,
            seed=3,
        )
        probe = future.result()
    assert probe.ghost_queries > 0
    assert probe.won == (probe.ghost_hits >= 12)
