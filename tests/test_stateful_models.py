"""Model-based stateful tests (hypothesis RuleBasedStateMachine).

Each machine drives a probabilistic structure through random operation
sequences while maintaining an exact reference model, checking the
structure's one-sided guarantees at every step:

* a classic Bloom filter may lie "present" but never "absent" for an
  inserted item, and its weight never exceeds ``insertions * k``;
* a counting filter additionally honours deletions of its own items;
* a Count-Min sketch never under-estimates any item's true count.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter
from repro.core.counting import CountingBloomFilter
from repro.counting import CountMinSketch

_ITEMS = st.text(
    alphabet="abcdefghijklmnop0123456789-/", min_size=1, max_size=24
)


class BloomFilterMachine(RuleBasedStateMachine):
    """Classic filter vs an exact set."""

    def __init__(self) -> None:
        super().__init__()
        self.filter = BloomFilter(2048, 3)
        self.model: set[str] = set()

    @rule(item=_ITEMS)
    def add(self, item: str) -> None:
        self.filter.add(item)
        self.model.add(item)

    @rule(item=_ITEMS)
    def query_never_false_negative(self, item: str) -> None:
        if item in self.model:
            assert item in self.filter

    @invariant()
    def weight_bounded(self) -> None:
        assert self.filter.hamming_weight <= len(self.filter) * self.filter.k
        assert self.filter.hamming_weight <= self.filter.m

    @invariant()
    def fpp_estimates_consistent(self) -> None:
        assert 0.0 <= self.filter.current_fpp() <= 1.0


class CountingFilterMachine(RuleBasedStateMachine):
    """Counting filter vs an exact multiset, with safe deletions only."""

    def __init__(self) -> None:
        super().__init__()
        self.filter = CountingBloomFilter(4096, 3, counter_bits=8)
        self.model: dict[str, int] = {}

    @rule(item=_ITEMS)
    def add(self, item: str) -> None:
        self.filter.add(item)
        self.model[item] = self.model.get(item, 0) + 1

    @rule(item=_ITEMS)
    def remove_if_present_in_model(self, item: str) -> None:
        # Only legitimate deletions (the service checked its database):
        # the false-negative attacks need *illegitimate* ones, tested
        # separately in tests/adversary/test_deletion.py.
        if self.model.get(item, 0) > 0:
            self.filter.remove(item)
            self.model[item] -= 1

    @rule(item=_ITEMS)
    def membership_is_sound(self, item: str) -> None:
        if self.model.get(item, 0) > 0:
            assert item in self.filter

    @invariant()
    def counter_mass_matches_model(self) -> None:
        # With 8-bit counters and bounded sequences nothing saturates, so
        # total counter mass is exactly k * (live model mass).
        live = sum(self.model.values())
        mass = sum(self.filter.counters.values())
        assert mass == live * self.filter.k


class CountMinMachine(RuleBasedStateMachine):
    """Count-Min sketch vs an exact counter dict."""

    def __init__(self) -> None:
        super().__init__()
        self.sketch = CountMinSketch(width=512, depth=4)
        self.model: dict[str, int] = {}

    @rule(item=_ITEMS, count=st.integers(min_value=1, max_value=5))
    def add(self, item: str, count: int) -> None:
        self.sketch.add(item, count)
        self.model[item] = self.model.get(item, 0) + count

    @rule(item=_ITEMS)
    def never_underestimates(self, item: str) -> None:
        assert self.sketch.estimate(item) >= self.model.get(item, 0)

    @invariant()
    def total_preserved(self) -> None:
        assert len(self.sketch) == sum(self.model.values())


TestBloomFilterMachine = BloomFilterMachine.TestCase
TestCountingFilterMachine = CountingFilterMachine.TestCase
TestCountMinMachine = CountMinMachine.TestCase

for testcase in (TestBloomFilterMachine, TestCountingFilterMachine, TestCountMinMachine):
    testcase.settings = settings(max_examples=25, stateful_step_count=30, deadline=None)
