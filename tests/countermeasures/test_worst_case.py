"""Worst-case parameter countermeasure."""

from __future__ import annotations

import math

import pytest

from repro.adversary.pollution import PollutionAttack
from repro.core.bloom import BloomFilter
from repro.core.params import BloomParameters
from repro.countermeasures.worst_case import compare_designs, harden, paper_constants


def test_comparison_shape():
    cmp = compare_designs(3200, 600)
    assert cmp.k_optimal == 4
    assert cmp.k_worst_case == 2
    assert cmp.hash_call_savings == 2.0
    # The hardened design trades a small honest penalty...
    assert 1.0 < cmp.honest_penalty < 1.5
    # ...for a big cut in what the adversary can force.
    assert cmp.adversarial_gain > 2.0


def test_hardened_adversarial_matches_closed_form():
    cmp = compare_designs(3200, 600)
    k = cmp.k_worst_case
    assert cmp.worst_case_adv == pytest.approx((600 * k / 3200) ** k)


def test_harden_rederives_k():
    params = BloomParameters.design_optimal(600, 0.077)
    hardened = harden(params)
    assert hardened.mode == "worst-case"
    assert hardened.m == params.m
    assert hardened.k < params.k


def test_paper_constants():
    constants = paper_constants()
    assert constants["k_opt/k_adv (= e ln2)"] == pytest.approx(math.e * math.log(2))
    assert constants["size inflation m'/m"] == pytest.approx(4.8, abs=0.05)


def test_empirical_pollution_capped_by_hardening():
    # Run the same full pollution campaign against both designs.
    optimal = BloomFilter(3200, 4)
    PollutionAttack(optimal, seed=1).run(600)
    hardened = BloomFilter.worst_case(600, 3200)
    PollutionAttack(hardened, seed=1).run(600)
    assert optimal.current_fpp() == pytest.approx(0.316, abs=0.01)
    assert hardened.current_fpp() == pytest.approx(0.1406, abs=0.01)
    assert hardened.current_fpp() < optimal.current_fpp() / 2


def test_hardening_does_not_stop_query_only_adversary():
    # The paper's caveat: worst-case parameters defeat chosen-insertion
    # but ghosts remain craftable because hashing stays public.
    from repro.adversary.query import GhostForgery
    from repro.urlgen.faker import UrlFactory

    hardened = BloomFilter.worst_case(600, 3200)
    factory = UrlFactory(seed=4)
    for _ in range(600):
        hardened.add(factory.url())
    ghost = GhostForgery(hardened).craft_one()
    assert ghost.item in hardened
