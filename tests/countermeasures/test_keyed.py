"""Keyed hashing countermeasure: unpredictability kills crafting."""

from __future__ import annotations

import pytest

from repro.adversary.crafting import CraftingEngine
from repro.adversary.pollution import PollutionAttack
from repro.countermeasures.keyed import (
    KeyedBloomFilter,
    generate_key,
    hmac_strategy,
    siphash_strategy,
)
from repro.exceptions import ParameterError
from repro.urlgen.faker import UrlFactory


def test_generate_key_length_and_uniqueness():
    assert len(generate_key()) == 16
    assert generate_key() != generate_key()
    with pytest.raises(ParameterError):
        generate_key(8)


def test_keyed_filter_basics():
    kbf = KeyedBloomFilter(1024, 4, key=bytes(16))
    kbf.add("item")
    assert "item" in kbf
    assert "other" not in kbf


@pytest.mark.parametrize("mac", ["siphash", "hmac-sha1", "hmac-sha256"])
def test_all_mac_variants_work(mac):
    kbf = KeyedBloomFilter(512, 3, key=bytes(16), mac=mac)
    kbf.add("x")
    assert "x" in kbf


def test_unknown_mac_rejected():
    with pytest.raises(ParameterError):
        KeyedBloomFilter(64, 2, mac="md5-plain")


def test_siphash_needs_16_byte_key():
    with pytest.raises(ParameterError):
        KeyedBloomFilter(64, 2, key=b"short", mac="siphash")


def test_for_capacity_uses_classical_optimum():
    kbf = KeyedBloomFilter.for_capacity(600, 0.077, key=bytes(16))
    assert kbf.k == 4  # with a key, the classical optimum is safe again


def test_key_changes_indexes():
    a = KeyedBloomFilter(4096, 4, key=bytes(16))
    b = KeyedBloomFilter(4096, 4, key=bytes(range(16)))
    assert a.indexes("victim") != b.indexes("victim")


def test_strategies_differ_between_keys():
    assert siphash_strategy(bytes(16)).indexes("u", 4, 512) != siphash_strategy(
        bytes(range(16))
    ).indexes("u", 4, 512)
    assert hmac_strategy(b"k1").indexes("u", 4, 512) != hmac_strategy(b"k2").indexes(
        "u", 4, 512
    )


def test_adversary_without_key_cannot_craft_efficiently():
    # The adversary guesses a key; her crafted items must satisfy the
    # predicate under the REAL key far less often than with knowledge.
    real = KeyedBloomFilter(256, 4, key=bytes(range(16)))
    for i in range(20):
        real.add(f"seed-{i}")

    guessed_strategy = siphash_strategy(bytes(16))  # wrong key
    engine = CraftingEngine(
        guessed_strategy,
        real.k,
        real.m,
        UrlFactory(seed=1).candidate_stream(),
        max_trials=50_000,
    )
    support = real.support()
    # Craft 30 'ghosts' under the guessed key; check them under the real key.
    hits = 0
    for _ in range(30):
        result = engine.craft(lambda idx: all(i in support for i in idx))
        if result.item in real:
            hits += 1
    # Under the real key these are just random items: success rate must be
    # near the blind (W/m)^k base rate, i.e. essentially never 30/30.
    blind_rate = (real.hamming_weight / real.m) ** real.k
    assert hits / 30 < max(10 * blind_rate, 0.2)


def test_pollution_attack_against_shadow_fails_on_real_filter():
    # The classic blinding setup collapses: the attacker's shadow filter
    # uses her guessed key, so her "fresh bit" items are ordinary inserts.
    real = KeyedBloomFilter(2048, 4, key=bytes(range(16)))
    shadow = KeyedBloomFilter(2048, 4, key=bytes(16))  # wrong key
    attack = PollutionAttack(shadow, seed=2)
    report = attack.run(100, insert=True)
    for item in report.items:
        real.add(item)
    # Under the attacker's model the weight would be exactly nk.
    assert shadow.hamming_weight == 100 * 4
    # On the real filter collisions happen as for random items.
    assert real.hamming_weight < 100 * 4


def test_keyed_filter_blocks_ghost_forgery_within_budget():
    # Query-only adversary with full oracle access to the real filter but
    # no key: each candidate is a ghost with probability (W/m)^k ~ 1e-11
    # here, so a 5000-candidate budget must find nothing.
    real = KeyedBloomFilter(4096, 6, key=bytes(range(16)))
    for i in range(10):
        real.add(f"x-{i}")
    factory = UrlFactory(seed=3)
    ghosts = sum(1 for _ in range(5_000) if factory.url() in real)
    assert ghosts == 0
