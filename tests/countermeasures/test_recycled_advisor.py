"""Recycling helpers (Fig. 9 calculus) and the threat-model advisor."""

from __future__ import annotations

import pytest

from repro.adversary.models import ALL_MODELS
from repro.countermeasures.advisor import ThreatAssessment, covers, recommend
from repro.countermeasures.recycled import (
    fig9_grid,
    hash_domain,
    k_for_fpp,
    max_m_single_call,
    recycled_filter,
)
from repro.exceptions import ParameterError
from repro.hashing.recycling import calls_required


def test_k_for_fpp():
    assert k_for_fpp(2**-10) == 10
    assert k_for_fpp(0.01) == 7
    with pytest.raises(ParameterError):
        k_for_fpp(0.0)


def test_recycled_filter_single_call_for_moderate_size():
    bf = recycled_filter(10_000, 2**-10, "sha512")
    assert bf.strategy.hash_calls(bf.k, bf.m) == 1
    bf.add("u")
    assert "u" in bf


def test_max_m_single_call():
    # SHA-512, k=10: window 51 bits -> m up to 2^51.
    assert max_m_single_call(512, 10) == 2**51
    # SHA-1, k=20: window 8 bits -> m up to 256.
    assert max_m_single_call(160, 20) == 2**8
    assert max_m_single_call(64, 100) == 0  # digest too narrow


def test_hash_domain_sha512_covers_paper_claim():
    # One SHA-512 call covers f >= 2^-15 up to 1 GByte (paper Fig. 9).
    one_gb = 8 * 2**30
    for f in (2**-5, 2**-10, 2**-15):
        assert hash_domain(f, "sha512").calls_at_1gb == 1
    assert hash_domain(2**-20, "sha512").calls_at_1gb > 1
    assert calls_required(20, one_gb, 512) == 2


def test_hash_domain_fields():
    domain = hash_domain(2**-10, "sha256")
    assert domain.hash_name == "sha256"
    assert domain.k == 10
    assert domain.max_mbytes_one_call == domain.max_m_one_call / 8 / 2**20


def test_fig9_grid_is_complete():
    grid = fig9_grid()
    assert len(grid) == 16  # 4 hashes x 4 FP targets
    # Wider digests never need more calls than narrower ones.
    for f in (2**-5, 2**-10, 2**-15, 2**-20):
        calls = [d.calls_at_1gb for d in grid if d.f == f]
        # grid order: sha1, sha256, sha384, sha512 for each f
        assert calls == sorted(calls, reverse=True)


# --- advisor ---------------------------------------------------------------------

def test_keyed_recommendation_first_when_secret_possible():
    recs = recommend(ThreatAssessment())
    assert "keyed hashing" in recs[0].measure
    assert set(recs[0].stops) == {"chosen-insertion", "query-only", "deletion"}


def test_performance_critical_prefers_siphash():
    fast = recommend(ThreatAssessment(performance_critical=True))
    assert "SipHash" in fast[0].measure
    slow = recommend(ThreatAssessment(performance_critical=False))
    assert "HMAC" in slow[0].measure


def test_no_secret_falls_back_to_worst_case_params():
    recs = recommend(ThreatAssessment(server_side_secret_possible=False))
    assert "worst-case parameters" in recs[0].measure
    assert recs[0].stops == ("chosen-insertion",)


def test_deletion_exposure_adds_counter_guidance():
    recs = recommend(ThreatAssessment(supports_deletion=True))
    measures = [r.measure for r in recs]
    assert any("saturating" in m for m in measures)


def test_exact_structure_always_last_resort():
    recs = recommend(ThreatAssessment())
    assert "exact structure" in recs[-1].measure


def test_covers_all_models_with_key():
    recs = recommend(ThreatAssessment())
    assert all(covers(recs, model) for model in ALL_MODELS)


def test_covers_partial_without_key():
    recs = recommend(
        ThreatAssessment(server_side_secret_possible=False, supports_deletion=False)
    )
    stopped = {name for rec in recs for name in rec.stops}
    # The exact-structure fallback still covers everything in principle...
    assert "query-only" in stopped
    # ...but the first (Bloom-preserving) recommendation does not.
    assert recs[0].stops == ("chosen-insertion",)
