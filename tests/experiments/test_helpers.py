"""Analytic helpers inside the experiment modules."""

from __future__ import annotations

import math

import pytest

from repro.core.params import adversarial_fpp, false_positive_probability
from repro.experiments.fig3_false_positive import analytic_crossing, analytic_partial_fpp
from repro.experiments.fig5_pollution_cost import expected_total_trials
from repro.experiments.fig6_ghost_cost import expected_ghost_trials
from repro.experiments.fig8_dablooms import oracle_pollute_slice


def test_partial_fpp_matches_honest_before_switch():
    for n in (50, 200, 400):
        assert analytic_partial_fpp(n) == false_positive_probability(3200, n, 4)


def test_partial_fpp_adds_k_bits_per_crafted_item():
    honest_weight = 3200 * (1 - math.exp(-4 * 400 / 3200))
    expected = ((honest_weight + 4 * 100) / 3200) ** 4
    assert analytic_partial_fpp(500) == pytest.approx(expected)


def test_partial_fpp_clamps_at_one():
    assert analytic_partial_fpp(10_000) == 1.0


def test_analytic_crossings_reproduce_paper():
    threshold = 0.077
    assert analytic_crossing(threshold, lambda n: adversarial_fpp(3200, n, 4)) == 422
    assert analytic_crossing(threshold, analytic_partial_fpp) in (505, 506, 507, 508)
    assert analytic_crossing(2.0, analytic_partial_fpp) is None


def test_expected_total_trials_monotone_in_k():
    # More hash functions -> lower acceptance -> more trials, strictly.
    m = 20_000
    trials = [expected_total_trials(m, k, 200) for k in (5, 10, 15, 20)]
    assert trials == sorted(trials)
    assert trials[-1] > 10 * trials[0]


def test_expected_ghost_trials_inverse_power_law():
    m, k = 10_000, 5
    sparse = expected_ghost_trials(m, k, weight=1000)
    dense = expected_ghost_trials(m, k, weight=5000)
    assert sparse / dense == pytest.approx((5000 / 1000) ** k)
    assert expected_ghost_trials(m, k, weight=0) == math.inf


def test_oracle_pollution_sets_exactly_nk_counters():
    import random

    from repro.core.counting import CountingBloomFilter

    slice_filter = CountingBloomFilter(2000, 5)
    oracle_pollute_slice(slice_filter, 100, random.Random(1))
    assert slice_filter.hamming_weight == 500
    assert len(slice_filter) == 100


def test_oracle_pollution_survives_exhaustion():
    import random

    from repro.core.counting import CountingBloomFilter

    tiny = CountingBloomFilter(20, 4)
    oracle_pollute_slice(tiny, 10, random.Random(2))  # 40 > 20 zeros
    assert tiny.hamming_weight == 20  # fully saturated, no crash
