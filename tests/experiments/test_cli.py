"""The experiments CLI (python -m repro.experiments)."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main


def test_run_single_experiment(capsys):
    assert main(["fig9"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out
    assert "SHA-512" in out or "sha512" in out
    assert "finished in" in out


def test_run_subset_with_scale(capsys):
    assert main(["table1", "--scale", "0.05", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "Attack success probabilities" in out


def test_unknown_id_errors():
    with pytest.raises(SystemExit) as excinfo:
        main(["not-an-experiment"])
    assert excinfo.value.code == 2


def test_help_lists_registry(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    assert "fig3" in capsys.readouterr().out
