"""Every experiment runs at tiny scale and reproduces its headline claim."""

from __future__ import annotations

import pytest

from repro.experiments import registry
from repro.experiments.runner import ExperimentResult, format_value, render_table


def test_registry_covers_every_paper_artifact():
    assert set(registry.REGISTRY) == {
        "fig3",
        "fig5",
        "fig6",
        "fig8",
        "fig9",
        "table1",
        "table2",
        "squid",
        "analytics",
        "worstcase",
        "service",
        "rotation_policy_study",
        "adaptive_budget_study",
        "defense_frontier",
        "cluster_study",
    }


def test_experiments_doc_table_covers_the_registry():
    """EXPERIMENTS.md must document every registered experiment -- the
    CI smoke matrix fails on the same check, so a new experiment cannot
    ship undocumented."""
    from pathlib import Path

    doc = Path(__file__).resolve().parents[2] / "EXPERIMENTS.md"
    text = doc.read_text(encoding="utf-8")
    missing = [
        experiment_id
        for experiment_id in registry.REGISTRY
        if f"`{experiment_id}`" not in text
    ]
    assert not missing, f"EXPERIMENTS.md is missing: {missing}"


def test_run_one_unknown_id():
    with pytest.raises(KeyError):
        registry.run_one("fig99")


@pytest.mark.parametrize("experiment_id", sorted(registry.REGISTRY))
def test_each_experiment_runs_and_renders(experiment_id):
    result = registry.run_one(experiment_id, scale=0.05, seed=1)
    assert isinstance(result, ExperimentResult)
    assert result.rows, "experiment produced no rows"
    rendered = result.render()
    assert result.title in rendered
    assert "paper claim" in rendered


def test_fig3_thresholds():
    result = registry.run_one("fig3", scale=1.0, seed=0)
    blob = "\n".join(result.notes)
    # The three paper crossings, exactly.
    assert "600/422" in blob.replace(">600/422", "600/422")
    assert "0.316" in blob


def test_fig5_cost_grows_with_minus_log_f():
    result = registry.run_one("fig5", scale=0.08, seed=0)
    times = [row[6] for row in result.rows]
    assert times[0] < times[-1]
    trials = [row[4] for row in result.rows]
    assert trials == sorted(trials)


def test_fig6_cost_falls_with_occupation():
    result = registry.run_one("fig6", scale=0.08, seed=0)
    k5 = [row for row in result.rows if row[0] == "2^-5"]
    expected = [row[3] for row in k5]
    assert expected == sorted(expected, reverse=True)


def test_fig8_monotone_in_polluted_slices():
    result = registry.run_one("fig8", scale=0.03, seed=0)
    compound = [row[1] for row in result.rows]
    assert compound == sorted(compound)
    assert compound[-1] > 5 * compound[0]  # full attack >> no attack


def test_fig9_sha512_claim():
    result = registry.run_one("fig9")
    assert any("2^-15" in note for note in result.notes)


def test_table1_orders_attacks():
    result = registry.run_one("table1", scale=0.05, seed=0)
    names = [row[0] for row in result.rows]
    assert "false-positive forgery" in names
    assert any("deletion" in n for n in names)


def test_table2_recycling_wins(capsys):
    result = registry.run_one("table2", scale=0.05, seed=0)
    for row in result.rows:
        if row[3] == "-":
            continue
        naive_us, recycled_us = row[1], row[3]
        assert recycled_us < naive_us  # recycling is always faster


def test_squid_attack_amplifies_false_hits():
    result = registry.run_one("squid", scale=1.0, seed=0)
    rates = {row[0]: row[5] for row in result.rows}
    assert rates["polluted"] > 2 * rates["control"]
    bits = {row[0]: row[1] for row in result.rows}
    assert bits["polluted"] == 762


def test_worstcase_validates_ceiling():
    result = registry.run_one("worstcase", scale=0.3, seed=0)
    notes = "\n".join(result.notes)
    assert "1.88" in notes
    assert "4.8" in notes


# --- runner utilities -------------------------------------------------------------

def test_format_value():
    assert format_value(True) == "yes"
    assert format_value(0.0) == "0"
    assert format_value(0.25) == "0.25"
    assert format_value(1.23456e-7) == "1.23e-07"
    assert format_value("text") == "text"


def test_render_table_alignment():
    table = render_table(["a", "long-header"], [[1, 2], [333, 4]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_result_add_row_and_note():
    result = ExperimentResult("x", "t", "claim", headers=["h"])
    result.add_row(1)
    result.note("n")
    assert result.rows == [[1]]
    assert "note: n" in result.render()
