"""Shard backends: local vs process-pool equivalence, rotation, snapshots."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.bloom import BloomFilter
from repro.exceptions import BackendError, ParameterError
from repro.service.backends import LocalBackend, ProcessPoolBackend, ShardState
from repro.service.gateway import MembershipGateway
from repro.urlgen.faker import UrlFactory

URLS = UrlFactory(seed=0xBACC).urls(200)


def factory() -> BloomFilter:
    return BloomFilter(1024, 4)


@pytest.fixture(params=["local", "process"])
def backend(request):
    built = (
        LocalBackend(factory, 4)
        if request.param == "local"
        else ProcessPoolBackend(factory, 4)
    )
    with built:
        yield built


def test_insert_then_query_round_trip(backend):
    async def scenario():
        inserted = await backend.insert_batch(0, URLS[:50])
        hits = await backend.query_batch(0, URLS[:50])
        fresh = await backend.query_batch(0, ["http://fresh.example"])
        return inserted, hits, fresh

    inserted, hits, fresh = asyncio.run(scenario())
    assert inserted.answers == [False] * 50  # all new
    assert hits.answers == [True] * 50
    assert hits.state.insertions == 50
    assert hits.state.hamming_weight > 0
    assert 0 < hits.state.fill_ratio < 1


def test_backends_agree_bit_for_bit():
    reference = factory()
    reference.add_batch(URLS[:80])

    async def scenario(built):
        await built.insert_batch(2, URLS[:80])
        return built.export_shard(2), await built.query_batch(2, URLS)

    with LocalBackend(factory, 4) as local, ProcessPoolBackend(factory, 4) as pool:
        local_export, local_answers = asyncio.run(scenario(local))
        pool_export, pool_answers = asyncio.run(scenario(pool))
    assert local_export == pool_export == reference.snapshot_bytes()
    assert local_answers.answers == pool_answers.answers


def test_state_probe_matches_batch_reply(backend):
    async def scenario():
        reply = await backend.insert_batch(1, URLS[:30])
        return reply

    reply = asyncio.run(scenario())
    state = backend.state(1)
    assert isinstance(state, ShardState)
    assert state == reply.state
    # Untouched shards stay empty.
    assert backend.state(3) == ShardState(0, 0.0, 0)


def test_rotate_resets_one_shard(backend):
    async def scenario():
        await backend.insert_batch(0, URLS[:60])
        await backend.insert_batch(1, URLS[60:120])
        await backend.rotate(0)

    asyncio.run(scenario())
    assert backend.state(0) == ShardState(0, 0.0, 0)
    assert backend.state(1).insertions == 60


def test_export_restore_round_trip(backend):
    async def fill():
        await backend.insert_batch(0, URLS[:70])

    asyncio.run(fill())
    raw = backend.export_shard(0)
    asyncio.run(backend.rotate(0))
    assert backend.state(0).insertions == 0
    backend.restore_shard(0, raw)
    assert backend.state(0).insertions == 70
    answers = asyncio.run(backend.query_batch(0, URLS[:70]))
    assert answers.answers == [True] * 70


def test_shard_view_sees_current_bits(backend):
    asyncio.run(backend.insert_batch(2, URLS[:40]))
    view = backend.shard_view(2)
    assert all(url in view for url in URLS[:40])
    assert view.hamming_weight == backend.state(2).hamming_weight
    # The view's index derivation matches the shard's: a ghost crafted
    # against the view must hit the real shard.
    assert view.indexes(URLS[0]) == factory().indexes(URLS[0])


def test_process_view_is_a_copy_local_view_is_live():
    with LocalBackend(factory, 2) as local, ProcessPoolBackend(factory, 2) as pool:
        asyncio.run(local.insert_batch(0, URLS[:10]))
        asyncio.run(pool.insert_batch(0, URLS[:10]))
        local.shard_view(0).add(URLS[50])
        pool.shard_view(0).add(URLS[50])
        # Mutating the local view hits the live filter; the process view
        # is the white-box adversary's copy and leaves the worker alone.
        assert local.state(0).insertions == 11
        assert pool.state(0).insertions == 10


def test_bad_shard_ids_rejected(backend):
    with pytest.raises(ParameterError):
        backend.state(4)
    with pytest.raises(ParameterError):
        asyncio.run(backend.insert_batch(-1, URLS[:2]))


def test_worker_error_does_not_kill_the_shard():
    with ProcessPoolBackend(factory, 2) as pool:
        with pytest.raises(BackendError, match="worker failed"):
            pool.restore_shard(0, b"garbage snapshot")
        # The worker survives and keeps serving.
        reply = asyncio.run(pool.insert_batch(0, URLS[:5]))
        assert reply.state.insertions == 5


def test_closed_backend_refuses_work():
    pool = ProcessPoolBackend(factory, 2)
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(BackendError, match="closed"):
        pool.state(0)


def test_invalid_shard_counts():
    with pytest.raises(ParameterError):
        LocalBackend(factory, -1)
    with pytest.raises(ParameterError):
        ProcessPoolBackend(factory, -1)
    # Zero is legal for a local backend (a cluster gateway may own no
    # shards until a handoff lands); slots then arrive via attach_shard.
    empty = LocalBackend(factory, 0)
    assert empty.shards == 0
    assert empty.attach_shard() == 0
    assert empty.shards == 1


def test_attach_detach_shard_slots():
    backend = LocalBackend(factory, 2)
    slot = backend.attach_shard()
    assert slot == 2 and backend.shards == 3

    async def fill():
        await backend.insert_batch(2, ["moved-item"])

    asyncio.run(fill())
    assert backend.state(2).insertions == 1
    # Detaching a lower slot shifts the others down, carrying state.
    backend.detach_shard(0)
    assert backend.shards == 2
    assert backend.state(1).insertions == 1
    with pytest.raises(ParameterError):
        backend.detach_shard(5)
    # The process pool pins one worker per slot: no dynamic membership.
    pool = ProcessPoolBackend(factory, 1)
    try:
        with pytest.raises(BackendError, match="attach"):
            pool.attach_shard()
        with pytest.raises(BackendError, match="detach"):
            pool.detach_shard(0)
    finally:
        pool.close()


def test_gateway_over_process_backend_matches_local():
    workload = URLS[:120]

    async def drive(gateway):
        await gateway.insert_batch(workload[:80])
        return await gateway.query_batch(workload)

    local_gw = MembershipGateway(factory, shards=4)
    with MembershipGateway(
        factory, backend=ProcessPoolBackend(factory, 4)
    ) as pool_gw:
        assert asyncio.run(drive(local_gw)) == asyncio.run(drive(pool_gw))
        assert [s.inserts for s in local_gw.snapshot()] == [
            s.inserts for s in pool_gw.snapshot()
        ]
