"""The micro-batch coalescer: merging, slicing, isolation, parity."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.bloom import BloomFilter
from repro.exceptions import ParameterError
from repro.service.backends import LocalBackend
from repro.service.coalesce import MicroBatchCoalescer
from repro.service.config import ServiceConfig
from repro.service.gateway import MembershipGateway
from repro.service.telemetry import CoalesceTelemetry
from repro.urlgen.faker import UrlFactory

URLS = UrlFactory(seed=0x0C0A).urls(400)


class RecordingRunner:
    """Fake gateway runner: records calls, answers len-parity booleans."""

    def __init__(self) -> None:
        self.calls: list[tuple[int, str, list]] = []

    async def __call__(self, shard_id: int, op: str, items: list) -> list:
        self.calls.append((shard_id, op, list(items)))
        return [len(str(item)) % 2 == 0 for item in items]


# ----------------------------------------------------------------------
# Unit level: the coalescer against a fake runner
# ----------------------------------------------------------------------


def test_concurrent_submits_merge_into_one_backend_call():
    runner = RecordingRunner()

    async def scenario():
        coalescer = MicroBatchCoalescer(runner, window_us=0, max_batch=64)
        futures = [
            coalescer.submit(0, "query", ["a"]),
            coalescer.submit(0, "query", ["bb", "cc"]),
            coalescer.submit(0, "query", ["ddd"]),
        ]
        return await asyncio.gather(*futures)

    slices = asyncio.run(scenario())
    # One merged call carried all three submissions, in order.
    assert len(runner.calls) == 1
    assert runner.calls[0] == (0, "query", ["a", "bb", "cc", "ddd"])
    # Each future got exactly its slice of the merged answers.
    assert [len(s) for s in slices] == [1, 2, 1]
    assert slices[0] == [False]          # "a" has odd length
    assert slices[1] == [True, True]     # "bb", "cc" even
    assert slices[2] == [False]


def test_distinct_shard_and_op_queues_do_not_merge():
    runner = RecordingRunner()

    async def scenario():
        coalescer = MicroBatchCoalescer(runner, window_us=0, max_batch=64)
        await asyncio.gather(
            coalescer.submit(0, "query", ["a"]),
            coalescer.submit(1, "query", ["b"]),
            coalescer.submit(0, "insert", ["c"]),
        )

    asyncio.run(scenario())
    assert sorted(call[:2] for call in runner.calls) == [
        (0, "insert"), (0, "query"), (1, "query"),
    ]


def test_size_flush_fires_before_the_window():
    runner = RecordingRunner()
    stats = CoalesceTelemetry()

    async def scenario():
        # A very long window that would stall the test if it were the
        # trigger; the size threshold must flush instead.
        coalescer = MicroBatchCoalescer(
            runner, window_us=5_000_000, max_batch=4, telemetry=stats
        )
        await asyncio.wait_for(
            asyncio.gather(
                coalescer.submit(0, "query", ["a", "b"]),
                coalescer.submit(0, "query", ["c", "d"]),
            ),
            timeout=1.0,
        )
        coalescer.close()

    asyncio.run(scenario())
    assert stats.flushes == 1
    assert stats.flush_size == 1
    assert stats.flush_window == 0


def test_window_flush_fires_without_reaching_max_batch():
    runner = RecordingRunner()
    stats = CoalesceTelemetry()

    async def scenario():
        coalescer = MicroBatchCoalescer(
            runner, window_us=1_000, max_batch=64, telemetry=stats
        )
        return await coalescer.submit(0, "query", ["only"])

    assert asyncio.run(scenario()) == [True]
    assert stats.flush_window == 1
    assert stats.flush_size == 0


def test_merged_failure_is_isolated_per_request():
    poison = "poison"

    calls: list[list] = []

    async def runner(shard_id: int, op: str, items: list) -> list:
        calls.append(list(items))
        if poison in items:
            raise RuntimeError("bad batch")
        return [True] * len(items)

    stats = CoalesceTelemetry()

    async def scenario():
        coalescer = MicroBatchCoalescer(
            runner, window_us=0, max_batch=64, telemetry=stats
        )
        return await asyncio.gather(
            coalescer.submit(0, "query", ["ok-1"]),
            coalescer.submit(0, "query", [poison]),
            coalescer.submit(0, "query", ["ok-2", "ok-3"]),
            return_exceptions=True,
        )

    first, poisoned, last = asyncio.run(scenario())
    # The merged call failed, then each submission was replayed alone:
    # innocent requests still got answers, only the offender failed.
    assert first == [True]
    assert last == [True, True]
    assert isinstance(poisoned, RuntimeError)
    assert stats.isolation_splits == 1
    assert calls[0] == ["ok-1", poison, "ok-2", "ok-3"]
    assert calls[1:] == [["ok-1"], [poison], ["ok-2", "ok-3"]]


def test_lone_failure_propagates_without_a_split():
    marker = RuntimeError("solo")

    async def runner(shard_id: int, op: str, items: list) -> list:
        raise marker

    stats = CoalesceTelemetry()

    async def scenario():
        coalescer = MicroBatchCoalescer(
            runner, window_us=0, max_batch=64, telemetry=stats
        )
        with pytest.raises(RuntimeError) as excinfo:
            await coalescer.submit(0, "query", ["x"])
        return excinfo.value

    # The original exception object arrives untouched, and no isolation
    # replay happened for a batch of one.
    assert asyncio.run(scenario()) is marker
    assert stats.isolation_splits == 0


def test_knob_validation():
    runner = RecordingRunner()
    with pytest.raises(ParameterError):
        MicroBatchCoalescer(runner, max_batch=0)
    with pytest.raises(ParameterError):
        MicroBatchCoalescer(runner, window_us=-1)


def test_close_cancels_pending_timers():
    runner = RecordingRunner()

    async def scenario():
        coalescer = MicroBatchCoalescer(runner, window_us=5_000_000, max_batch=64)
        future = coalescer.submit(0, "query", ["parked"])
        assert coalescer.queue_depth == 1
        coalescer.close()
        assert coalescer.queue_depth == 0
        future.cancel()

    asyncio.run(scenario())
    assert runner.calls == []


# ----------------------------------------------------------------------
# Gateway level: coalesced serving vs the uncoalesced replay
# ----------------------------------------------------------------------


def _requests(n_clients: int = 8, rounds: int = 6, size: int = 3):
    """Deterministic per-client request streams over the shared URLS."""
    streams = []
    for c in range(n_clients):
        stream = []
        for r in range(rounds):
            base = (c * rounds + r) * size
            stream.append([URLS[(base + i) % len(URLS)] for i in range(size)])
        streams.append(stream)
    return streams


async def _replay(gateway: MembershipGateway, streams, concurrent: bool):
    """Insert every even round, query every round; returns all answers."""

    async def one_client(idx: int, stream) -> list:
        answers = []
        for r, batch in enumerate(stream):
            if r % 2 == 0:
                await gateway.insert_batch(batch, client=f"c{idx}")
            answers.append(await gateway.query_batch(batch, client=f"c{idx}"))
        return answers

    if concurrent:
        return await asyncio.gather(
            *(one_client(i, s) for i, s in enumerate(streams))
        )
    return [await one_client(i, s) for i, s in enumerate(streams)]


def make_gateway(**kwargs) -> MembershipGateway:
    kwargs.setdefault("shards", 4)
    return MembershipGateway(lambda: BloomFilter(2048, 4), **kwargs)


def test_coalesced_answers_and_filter_bytes_match_uncoalesced():
    streams = _requests()

    plain = make_gateway()
    baseline = asyncio.run(_replay(plain, streams, concurrent=False))

    merged = make_gateway()
    merged.configure_coalescing(window_us=0, max_batch=32)
    coalesced = asyncio.run(_replay(merged, streams, concurrent=True))

    # Same answers for every request of every client, and the shard
    # filters end up bit-identical -- merging is invisible.
    assert coalesced == baseline
    assert merged.coalesce_telemetry.flushes > 0
    assert merged.coalesce_telemetry.requests > merged.coalesce_telemetry.flushes
    for shard_id in range(plain.shards):
        assert (
            merged.shard_view(shard_id).to_bytes()
            == plain.shard_view(shard_id).to_bytes()
        )


class PoisonBackend(LocalBackend):
    """Local backend that rejects any batch containing the poison item."""

    poison = "http://poison.example/"

    async def query_batch(self, shard_id, items):
        if self.poison in items:
            raise RuntimeError("poisoned batch")
        return await super().query_batch(shard_id, items)


def test_gateway_merged_batch_isolates_the_poisoned_request():
    backend = PoisonBackend(lambda: BloomFilter(2048, 4), 1)
    gateway = MembershipGateway(backend=backend)
    gateway.configure_coalescing(window_us=0, max_batch=64)

    async def scenario():
        await gateway.insert_batch(URLS[:10], client="seed")
        return await asyncio.gather(
            gateway.query_batch(URLS[:4], client="good-1"),
            gateway.query_batch([PoisonBackend.poison], client="bad"),
            gateway.query_batch(URLS[4:8], client="good-2"),
            return_exceptions=True,
        )

    good1, bad, good2 = asyncio.run(scenario())
    assert good1 == [True] * 4
    assert good2 == [True] * 4
    assert isinstance(bad, RuntimeError)
    assert gateway.coalesce_telemetry.isolation_splits == 1


def test_chatty_client_does_not_starve_the_quiet_ones():
    gateway = make_gateway()
    gateway.configure_coalescing(window_us=0, max_batch=16)

    async def chatty() -> int:
        done = 0
        for r in range(40):
            await gateway.query_batch(
                [URLS[(r * 8 + i) % len(URLS)] for i in range(8)],
                client="chatty",
            )
            done += 1
        return done

    async def quiet(idx: int) -> int:
        done = 0
        for r in range(10):
            await gateway.query_batch(
                [URLS[(idx * 10 + r) % len(URLS)]], client=f"quiet-{idx}"
            )
            done += 1
        return done

    async def scenario():
        return await asyncio.wait_for(
            asyncio.gather(chatty(), *(quiet(i) for i in range(8))),
            timeout=10.0,
        )

    counts = asyncio.run(scenario())
    # Everyone finishes their full stream: merged flushes stay FIFO, so
    # a high-volume client cannot push the singles out indefinitely.
    assert counts == [40] + [10] * 8


def test_rotation_decisions_survive_merging():
    def build(coalesce: bool) -> MembershipGateway:
        gateway = MembershipGateway.from_config(
            ServiceConfig(
                shards=1, shard_m=1024, shard_k=4, rotation_threshold=0.2
            )
        )
        if coalesce:
            gateway.configure_coalescing(window_us=0, max_batch=64)
        return gateway

    batches = [URLS[i : i + 4] for i in range(0, 100, 4)]

    async def sequential(gateway):
        for batch in batches:
            await gateway.insert_batch(batch, client="seq")

    async def concurrent(gateway):
        # Five waves of five concurrent sub-batches so merging happens.
        for wave in range(5):
            await asyncio.gather(
                *(
                    gateway.insert_batch(batch, client=f"w{i}")
                    for i, batch in enumerate(batches[wave * 5 : wave * 5 + 5])
                )
            )

    plain = build(coalesce=False)
    asyncio.run(sequential(plain))
    merged = build(coalesce=True)
    asyncio.run(concurrent(merged))

    assert merged.coalesce_telemetry.flushes < len(batches)
    assert plain.rotations >= 1
    # The fill threshold fires exactly as often either way: merging
    # changes when the check runs, not what it concludes.
    assert merged.rotations == plain.rotations


# ----------------------------------------------------------------------
# Config and gateway knobs
# ----------------------------------------------------------------------


def test_service_config_coalesce_knob_validation():
    config = ServiceConfig(coalesce_window_us=200, coalesce_max_batch=32)
    assert config.coalesce_window_us == 200
    with pytest.raises(ParameterError):
        ServiceConfig(coalesce_window_us=-1)
    with pytest.raises(ParameterError):
        ServiceConfig(coalesce_max_batch=-1)
    with pytest.raises(ParameterError):
        ServiceConfig(pipeline_depth=-1)
    with pytest.raises(ParameterError):
        # A window without a batch ceiling would never flush on size and
        # signals a half-configured deployment.
        ServiceConfig(coalesce_window_us=100, coalesce_max_batch=0)


def test_gateway_from_config_wires_coalescing():
    gateway = MembershipGateway.from_config(
        ServiceConfig(shards=2, coalesce_window_us=100, coalesce_max_batch=8)
    )
    assert gateway.coalescing
    stats = gateway.coalesce_stats()
    assert stats["enabled"] is True
    assert stats["queue_depth"] == 0

    off = MembershipGateway.from_config(ServiceConfig(shards=2))
    assert not off.coalescing
    assert off.coalesce_stats()["enabled"] is False


def test_configure_coalescing_toggles_and_keeps_counters():
    gateway = make_gateway()
    gateway.configure_coalescing(window_us=0, max_batch=8)

    async def burst():
        await asyncio.gather(
            *(gateway.query_batch([url]) for url in URLS[:6])
        )

    asyncio.run(burst())
    before = gateway.coalesce_telemetry.requests
    assert before == 6

    gateway.configure_coalescing(0, 0)
    assert not gateway.coalescing
    # Counters survive the toggle so before/after deltas stay meaningful.
    assert gateway.coalesce_telemetry.requests == before
    with pytest.raises(ParameterError):
        gateway.configure_coalescing(window_us=100, max_batch=0)
