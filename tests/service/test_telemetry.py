"""Telemetry: latency histograms, shard counters, rendering."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.service.telemetry import (
    LatencyHistogram,
    ShardTelemetry,
    render_snapshots,
)


def test_histogram_empty():
    hist = LatencyHistogram()
    assert hist.count == 0
    assert hist.mean == 0.0
    assert hist.quantile(0.5) == 0.0


def test_histogram_records_and_buckets():
    hist = LatencyHistogram()
    for micros in (1, 2, 4, 8, 1000):
        hist.record(micros / 1e6)
    assert hist.count == 5
    assert hist.mean == pytest.approx(1015 / 5 / 1e6)
    # The p50 bucket upper edge covers the 4us sample.
    assert hist.quantile(0.5) >= 4 / 1e6
    # p99 lands in the 1000us sample's bucket [512, 1024): upper edge 1024us.
    assert hist.quantile(0.99) == pytest.approx(1024 / 1e6)


def test_histogram_quantiles_are_monotone():
    hist = LatencyHistogram()
    for micros in (1, 3, 9, 27, 81, 243, 729):
        hist.record(micros / 1e6)
    quantiles = [hist.quantile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.99)]
    assert quantiles == sorted(quantiles)


def test_histogram_sub_microsecond_and_huge_samples():
    hist = LatencyHistogram()
    hist.record(0.0)  # clamps into bucket 0
    hist.record(1e-9)
    hist.record(10_000.0)  # clamps into the last bucket
    assert hist.count == 3
    assert hist.quantile(1.0) > 0


def test_histogram_rejects_negative():
    with pytest.raises(ParameterError):
        LatencyHistogram().record(-1e-6)
    with pytest.raises(ParameterError):
        LatencyHistogram().quantile(1.5)


def test_histogram_merge():
    a, b = LatencyHistogram(), LatencyHistogram()
    a.record(2e-6)
    b.record(8e-6)
    b.record(32e-6)
    a.merge(b)
    assert a.count == 3
    assert a.mean == pytest.approx(42e-6 / 3)


def test_shard_telemetry_snapshot():
    telemetry = ShardTelemetry(3)
    telemetry.inserts = 10
    telemetry.queries = 20
    telemetry.positives = 5
    telemetry.rotations = 1
    telemetry.query_latency.record(16e-6)
    snap = telemetry.snapshot(weight=100, fill_ratio=0.25)
    assert snap.shard_id == 3
    assert snap.inserts == 10
    assert snap.queries == 20
    assert snap.positives == 5
    assert snap.rotations == 1
    assert snap.weight == 100
    assert snap.fill_ratio == 0.25
    assert snap.query_p50_us == pytest.approx(32.0)


def test_render_snapshots_table():
    snaps = [
        ShardTelemetry(i).snapshot(weight=i * 10, fill_ratio=i / 10) for i in range(3)
    ]
    table = render_snapshots(snaps)
    lines = table.splitlines()
    assert "shard" in lines[0] and "rotations" in lines[0]
    assert len(lines) == 2 + 3  # header, rule, one row per shard


def test_snapshot_carries_recent_positive_rate():
    telemetry = ShardTelemetry(1)
    snap = telemetry.snapshot(weight=10, fill_ratio=0.1, recent_positive_rate=0.625)
    assert snap.recent_positive_rate == 0.625
    # Omitted (non-gateway callers): defaults to no recent signal.
    assert telemetry.snapshot(weight=10, fill_ratio=0.1).recent_positive_rate == 0.0
    table = render_snapshots([snap])
    assert "recent_pos" in table
    assert "0.625" in table
