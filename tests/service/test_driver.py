"""The adversarial traffic driver: crafting, concurrency, reporting,
rate-limit-accurate retries, and the shared attack budget."""

from __future__ import annotations

import asyncio
import time
from types import SimpleNamespace

import pytest

from repro.adversary.budget import AttackBudget
from repro.core.bloom import BloomFilter
from repro.exceptions import ParameterError
from repro.service.admission import ClientRateLimiter, SaturationGuard
from repro.service.backends import LocalBackend, ProcessPoolBackend
from repro.service.driver import AdversarialTrafficDriver, TrafficReport, replay
from repro.service.gateway import MembershipGateway
from repro.service.sharding import HashShardPicker, KeyedShardPicker


def make_gateway(m: int = 512, **kwargs) -> MembershipGateway:
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("picker", HashShardPicker())
    return MembershipGateway(lambda: BloomFilter(m, 4), **kwargs)


def small_workload(**overrides) -> dict:
    workload = dict(
        honest_clients=2,
        honest_inserts=60,
        honest_queries=60,
        batch=8,
        pollution_inserts=40,
        ghost_queries=8,
        ghost_min_fill=0.1,
        target_shard=0,
        probe_queries=120,
    )
    workload.update(overrides)
    return workload


def test_crafted_pollution_aims_at_target_shard():
    gateway = make_gateway()
    driver = AdversarialTrafficDriver(gateway, seed=5, max_trials=100_000)
    report = TrafficReport()
    items = driver.craft_pollution(0, 12, report)
    assert len(items) == 12
    assert report.pollution_crafted == 12
    assert report.pollution_trials >= 12
    # Every crafted item routes to the target shard and pollutes it:
    # k fresh bits per insert, by the paper's eq. (6) predicate.
    before = gateway.filters[0].hamming_weight
    for item in items:
        assert gateway.shard_of(item) == 0
        gateway.filters[0].add(item)
    assert gateway.filters[0].hamming_weight == before + 12 * 4


def test_crafted_ghosts_hit_polluted_shard():
    gateway = make_gateway()
    shard0 = gateway.filters[0]
    # Pre-fill the shard so ghost forging is affordable.
    filler = AdversarialTrafficDriver(gateway, seed=9, max_trials=100_000)
    report = TrafficReport()
    for item in filler.craft_pollution(0, 30, report):
        shard0.add(item)
    ghosts = filler.craft_ghosts(0, 6, report)
    assert len(ghosts) == 6
    assert report.ghost_crafted == 6
    for ghost in ghosts:
        assert gateway.shard_of(ghost) == 0
        assert ghost in shard0  # a false positive by construction


def test_replay_reports_consistent_counts():
    gateway = make_gateway(guard=SaturationGuard(0.35))
    driver = AdversarialTrafficDriver(gateway, seed=11, max_trials=100_000)
    report = asyncio.run(driver.run(**small_workload()))
    assert report.honest_inserts == 60
    assert report.honest_queries == 60
    assert report.probe_queries == 120
    assert report.elapsed_s > 0
    assert report.operations > 0
    assert report.throughput > 0
    assert len(report.snapshots) == 4
    # The aimed attack concentrates inserts on the target shard.
    inserts = [s.inserts for s in report.snapshots]
    assert inserts[0] == max(inserts)
    rendered = report.render()
    assert "pollution" in rendered and "shard" in rendered


def test_replay_triggers_rotation_under_aimed_pollution():
    gateway = make_gateway(m=256, guard=SaturationGuard(0.35))
    driver = AdversarialTrafficDriver(gateway, seed=2, max_trials=100_000)
    report = asyncio.run(driver.run(**small_workload(pollution_inserts=60)))
    assert report.rotations >= 1
    assert gateway.rotation_log[0].shard_id == 0


def test_keyed_routing_disperses_misrouted_attack():
    # Gateway routes with a secret key; the adversary aims via the
    # public hash, so its crafted stream scatters across shards.
    gateway = make_gateway(picker=KeyedShardPicker(bytes(16)))
    driver = AdversarialTrafficDriver(
        gateway, seed=5, attacker_router=HashShardPicker(), max_trials=100_000
    )
    report = TrafficReport()
    items = driver.craft_pollution(0, 16, report)
    landed = [gateway.shard_of(item) for item in items]
    assert len(set(landed)) > 1  # no longer concentrated on shard 0


def test_ghost_amplification_exceeds_honest_baseline():
    gateway = make_gateway(guard=None)
    driver = AdversarialTrafficDriver(gateway, seed=23, max_trials=100_000)
    report = asyncio.run(driver.run(**small_workload(ghost_queries=12)))
    assert report.ghost_queries > 0
    assert report.ghost_hit_rate > report.honest_fp_rate
    assert report.amplification > 1


def test_replay_sync_wrapper():
    gateway = make_gateway()
    report = replay(gateway, **small_workload(pollution_inserts=0, ghost_queries=0))
    assert isinstance(report, TrafficReport)
    assert report.pollution_crafted == 0
    assert report.ghost_queries == 0
    assert report.amplification == 0.0


def test_driver_validation():
    gateway = make_gateway()
    with pytest.raises(ParameterError):
        AdversarialTrafficDriver(gateway, craft_chunk=0)
    driver = AdversarialTrafficDriver(gateway)
    with pytest.raises(ParameterError):
        asyncio.run(driver.run(honest_clients=-1))


def test_empty_report_properties():
    report = TrafficReport()
    assert report.throughput == 0.0
    assert report.honest_fp_rate == 0.0
    assert report.ghost_hit_rate == 0.0
    assert report.amplification == 0.0
    assert report.latency_mean_probes == 0.0


def test_latency_workload_crafts_worst_case_negatives():
    gateway = make_gateway(guard=None)
    driver = AdversarialTrafficDriver(gateway, seed=31, max_trials=100_000)
    # Pre-fill the target shard so latency forging is affordable.
    report = TrafficReport()
    for item in driver.craft_pollution(0, 40, report):
        gateway.filters[0].add(item)
    items = driver.craft_latency_queries(0, 10, report)
    assert len(items) == 10
    assert report.latency_crafted == 10
    shard0 = gateway.filters[0]
    for item in items:
        # Routed at the target shard, k-1 set bits then one unset: a
        # negative that walks the whole short-circuit loop.
        assert gateway.shard_of(item) == 0
        indexes = shard0.indexes(item)
        assert all(shard0.bits.get(i) for i in indexes[:-1])
        assert not shard0.bits.get(indexes[-1])
        assert item not in shard0
    # Every crafted item forces all k probes.
    assert report.latency_mean_probes == 4.0


def test_replay_with_latency_stream_reports_counters():
    gateway = make_gateway(guard=None)
    driver = AdversarialTrafficDriver(gateway, seed=13, max_trials=100_000)
    report = asyncio.run(
        driver.run(
            **small_workload(
                ghost_queries=0, latency_queries=12, latency_min_fill=0.05
            )
        )
    )
    assert report.latency_queries == 12
    assert report.latency_crafted >= 12
    assert report.latency_mean_probes == 4.0
    # Latency queries are negatives: they never raise the positive count
    # beyond what honest traffic and FPs produce, but they do run through
    # the telemetry (shard 0 saw them).
    assert report.snapshots[0].queries >= 12
    assert "latency queries: 12" in report.render()
    with pytest.raises(ParameterError):
        asyncio.run(driver.run(latency_queries=-1))


def test_replay_over_tcp_transport_matches_inproc_counts():
    """The transport knob: identical seeded workload, same counts."""
    from repro.service.client import MembershipClient
    from repro.service.server import MembershipServer

    workload = small_workload(pollution_inserts=0, ghost_queries=0)

    async def over_tcp():
        gateway = make_gateway()
        async with MembershipServer(gateway) as server:
            client = MembershipClient(*server.address)
            driver = AdversarialTrafficDriver(gateway, seed=11, transport=client)
            report = await driver.run(**workload)
            await client.aclose()
            return report

    tcp_report = asyncio.run(over_tcp())
    inproc_driver = AdversarialTrafficDriver(make_gateway(), seed=11)
    inproc_report = asyncio.run(inproc_driver.run(**workload))

    for field in ("honest_inserts", "honest_queries", "operations",
                  "probe_queries", "probe_false_positives"):
        assert getattr(tcp_report, field) == getattr(inproc_report, field)
    assert [s.inserts for s in tcp_report.snapshots] == [
        s.inserts for s in inproc_report.snapshots
    ]


# ----------------------------------------------------------------------
# Rate-limit-accurate accounting (the retry-not-skip fix)
# ----------------------------------------------------------------------


def frozen_limiter(burst: int = 8) -> ClientRateLimiter:
    """A limiter whose clock never advances: each client gets exactly one
    ``burst`` of admissions, ever -- fully deterministic rejections."""
    return ClientRateLimiter(rate=1.0, burst=burst, clock=lambda: 0.0)


def test_honest_rate_limited_chunks_are_retried_then_dropped_explicitly():
    # Frozen bucket: the first 8-item chunk is admitted, everything after
    # is rejected on every attempt.  The old code silently skipped the
    # rejected chunks while advancing the workload cursor; now they are
    # retried (visible in rate_limited) and, past the bounded cap,
    # dropped *explicitly* into send_dropped.
    gateway = make_gateway(limiter=frozen_limiter(burst=8))
    driver = AdversarialTrafficDriver(
        gateway, seed=3, backoff=0.001, send_retries=3
    )
    report = asyncio.run(
        driver.run(
            honest_clients=1,
            honest_inserts=24,
            honest_queries=0,
            batch=8,
            pollution_inserts=0,
            ghost_queries=0,
            probe_queries=0,
        )
    )
    assert report.honest_inserts == 8  # only the admitted chunk delivered
    assert report.send_dropped == 16  # the other two chunks, explicitly
    assert report.honest_inserts + report.send_dropped == 24  # nothing silent
    # Each dropped chunk was attempted 1 + send_retries times.
    assert report.rate_limited == 2 * (1 + 3) * 8
    assert report.operations == 8


def test_honest_rate_limited_chunks_eventually_deliver_with_refill():
    # A live (refilling) limiter: retries must deliver the whole
    # workload -- the pre-fix behaviour lost these chunks entirely.
    gateway = make_gateway(
        limiter=ClientRateLimiter(rate=2000.0, burst=8)
    )
    driver = AdversarialTrafficDriver(
        gateway, seed=5, backoff=0.005, send_retries=50
    )
    report = asyncio.run(
        driver.run(
            honest_clients=1,
            honest_inserts=40,
            honest_queries=16,
            batch=8,
            pollution_inserts=0,
            ghost_queries=0,
            probe_queries=0,
        )
    )
    assert report.honest_inserts == 40
    assert report.honest_queries == 16
    assert report.send_dropped == 0
    assert report.rate_limited > 0  # the bucket did push back along the way


def test_attack_loop_retries_rate_limited_chunks():
    # Same frozen-bucket determinism for the attack path: crafted chunks
    # past the burst are retried then dropped -- never counted as sent.
    gateway = make_gateway(limiter=frozen_limiter(burst=8))
    driver = AdversarialTrafficDriver(
        gateway, seed=2, max_trials=100_000, backoff=0.001, send_retries=2
    )
    report = asyncio.run(
        driver.run(
            honest_clients=0,
            honest_inserts=0,
            honest_queries=0,
            batch=8,
            pollution_inserts=24,
            ghost_queries=0,
            probe_queries=0,
        )
    )
    assert report.pollution_crafted == 24
    # Only the admitted chunk reached the target shard.
    assert report.snapshots[0].inserts == 8
    assert report.operations == 8
    assert report.send_dropped == 16
    assert report.rate_limited == 2 * (1 + 2) * 8


# ----------------------------------------------------------------------
# The monotonic fill-wait bound
# ----------------------------------------------------------------------


def test_wait_for_fill_bound_is_wall_clock_not_iterations(monkeypatch):
    # A never-filling shard with slow state probes: the 5 s bound must be
    # measured with time.monotonic, not by counting 5 ms per iteration
    # (the old accounting stretched the bound by however long each
    # off-thread probe took).
    import repro.service.driver as driver_module

    gateway = make_gateway()
    driver = AdversarialTrafficDriver(gateway)
    fake_now = {"t": 100.0}

    def fake_monotonic() -> float:
        # Each call advances the clock by 2.6 "seconds" -- as if every
        # probe round-trip were that slow on a busy process backend.
        fake_now["t"] += 2.6
        return fake_now["t"]

    monkeypatch.setattr(
        driver_module,
        "time",
        SimpleNamespace(monotonic=fake_monotonic, perf_counter=time.perf_counter),
    )
    polls = {"n": 0}
    real_state = gateway.shard_state

    def counting_state(shard_id):
        polls["n"] += 1
        return real_state(shard_id)

    monkeypatch.setattr(gateway, "shard_state", counting_state)
    start = time.perf_counter()
    asyncio.run(driver._wait_for_fill(0, min_fill=0.99))
    assert time.perf_counter() - start < 2.0  # bound held in real time
    # deadline = t+5; with 2.6s per clock read only one poll fits.
    assert polls["n"] == 1


def test_wait_for_fill_returns_once_filled():
    gateway = make_gateway(m=256)
    driver = AdversarialTrafficDriver(gateway, seed=1, max_trials=100_000)
    report = TrafficReport()
    for item in driver.craft_pollution(0, 20, report):
        gateway.filters[0].add(item)
    start = time.perf_counter()
    asyncio.run(driver._wait_for_fill(0, min_fill=0.1))
    assert time.perf_counter() - start < 1.0


# ----------------------------------------------------------------------
# Amplification without a probe baseline
# ----------------------------------------------------------------------


def test_zero_probe_amplification_is_undefined_not_x1():
    gateway = make_gateway(guard=None)
    driver = AdversarialTrafficDriver(gateway, seed=23, max_trials=100_000)
    report = asyncio.run(
        driver.run(**small_workload(ghost_queries=12, probe_queries=0))
    )
    assert report.ghost_queries > 0 and report.ghost_hits > 0
    # No baseline -> undefined -> 0.0, never hit_rate/1.0 passed off as x1.
    assert report.probe_queries == 0
    assert report.amplification == 0.0
    assert "no probe baseline" in report.render()


# ----------------------------------------------------------------------
# The shared attack budget over both backends
# ----------------------------------------------------------------------


@pytest.fixture(params=["local", "process"])
def driver_backend(request):
    return request.param


def build_backend_gateway(kind: str, m: int = 512, shards: int = 4) -> MembershipGateway:
    def factory() -> BloomFilter:
        return BloomFilter(m, 4)

    backend = (
        ProcessPoolBackend(factory, shards)
        if kind == "process"
        else LocalBackend(factory, shards)
    )
    return MembershipGateway(factory, backend=backend, picker=HashShardPicker())


def test_budget_exhaustion_stops_the_static_ghost_client(driver_backend):
    with build_backend_gateway(driver_backend) as gateway:
        budget = AttackBudget(max_trials=400)
        driver = AdversarialTrafficDriver(
            gateway, seed=7, max_trials=50_000, budget=budget
        )
        report = asyncio.run(
            driver.run(
                honest_clients=2,
                honest_inserts=120,
                honest_queries=40,
                batch=16,
                pollution_inserts=0,
                ghost_queries=40,
                ghost_min_fill=0.08,
                probe_queries=40,
            )
        )
    assert report.budget_exhausted >= 1  # the campaign hit the wall
    assert report.ghost_queries < 40  # and could not finish the workload
    assert budget.trials_spent <= 400  # the clamp never overspends
    assert report.budget_spend["ghost"]["trials"] == budget.trials_spent
    assert "attack budget spend" in report.render()


def test_adaptive_strategy_outearns_static_per_trial(driver_backend):
    def replay_strategy(strategy: str) -> TrafficReport:
        with build_backend_gateway(driver_backend) as gateway:
            driver = AdversarialTrafficDriver(
                gateway,
                seed=11,
                max_trials=20_000,
                budget=AttackBudget(max_trials=4000),
            )
            workload = dict(
                honest_clients=2,
                honest_inserts=160,
                honest_queries=60,
                batch=16,
                pollution_inserts=0,
                ghost_queries=32 if strategy == "static" else 0,
                adaptive_ghost_queries=32 if strategy == "adaptive" else 0,
                ghost_min_fill=0.15,
                adaptive_min_fill=0.15,
                probe_queries=0,
            )
            return asyncio.run(driver.run(**workload))

    static = replay_strategy("static")
    adaptive = replay_strategy("adaptive")
    assert adaptive.adaptive_queries > 0
    assert adaptive.adaptive_resends > 0  # confirmed ghosts were replayed
    assert adaptive.adaptive_hits >= adaptive.adaptive_resends
    # The Naor-Yogev advantage: same purse, more hits per charged trial.
    assert adaptive.hits_per_kilotrial("adaptive") > static.hits_per_kilotrial(
        "ghost"
    )
    # Spend is labelled per client, and trials go only to the one that ran.
    assert "adaptive" in adaptive.budget_spend
    assert "ghost" not in adaptive.budget_spend


def test_budget_deadline_ends_the_campaign():
    gateway = make_gateway()
    clock = {"t": 0.0}

    def fake_clock() -> float:
        clock["t"] += 0.5  # every budget touch burns half a "second"
        return clock["t"]

    budget = AttackBudget(deadline_s=3.0, clock=fake_clock)
    driver = AdversarialTrafficDriver(
        gateway, seed=9, max_trials=100_000, budget=budget
    )
    report = asyncio.run(
        driver.run(
            honest_clients=1,
            honest_inserts=60,
            honest_queries=0,
            batch=8,
            pollution_inserts=40,
            ghost_queries=0,
            probe_queries=0,
        )
    )
    assert report.budget_exhausted >= 1
    assert report.pollution_crafted < 40
    # Honest traffic is never charged, so it finished untouched.
    assert report.honest_inserts == 60


def test_adaptive_pool_flushes_when_rotation_invalidates_ghosts():
    from repro.service.lifecycle import AdaptivePositiveRatePolicy

    gateway = make_gateway(
        m=512, policy=AdaptivePositiveRatePolicy(0.9, min_queries=8, window=16)
    )
    driver = AdversarialTrafficDriver(gateway, seed=13, max_trials=100_000)
    report = asyncio.run(
        driver.run(
            honest_clients=2,
            honest_inserts=120,
            honest_queries=0,
            batch=16,
            pollution_inserts=0,
            ghost_queries=0,
            adaptive_ghost_queries=48,
            adaptive_min_fill=0.1,
            probe_queries=0,
        )
    )
    # The windowed tripwire rotates on the all-positive adaptive storm,
    # and the strategy notices: a pooled ghost answered negative.
    assert report.rotations >= 1
    assert report.adaptive_flushes >= 1
    assert report.adaptive_queries > 0
    assert report.adaptive_hits < report.adaptive_queries  # post-flush misses


def test_driver_coalesce_knob_and_report_columns():
    gateway = make_gateway(m=2048)
    driver = AdversarialTrafficDriver(
        gateway, seed=31, max_trials=100_000, coalesce=True
    )
    assert gateway.coalescing
    report = asyncio.run(driver.run(**small_workload()))
    # The concurrent replay actually shared merged backend calls, and
    # the report carries the delta for *this* replay only.
    assert report.coalesce_requests > 0
    assert report.coalesce_flushes > 0
    assert report.coalesce_ratio >= 1.0
    assert "coalesced:" in report.render()

    off = AdversarialTrafficDriver(gateway, seed=31, coalesce=False)
    assert not gateway.coalescing
    report_off = asyncio.run(off.run(**small_workload()))
    assert report_off.coalesce_requests == 0
    assert report_off.coalesce_flushes == 0
    assert "coalesced:" not in report_off.render()


def test_driver_coalesce_none_leaves_gateway_untouched():
    gateway = make_gateway()
    gateway.configure_coalescing(window_us=100, max_batch=8)
    AdversarialTrafficDriver(gateway, coalesce=None)
    assert gateway.coalescing
    AdversarialTrafficDriver(gateway, coalesce=False)
    assert not gateway.coalescing
