"""The adversarial traffic driver: crafting, concurrency, reporting."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.bloom import BloomFilter
from repro.exceptions import ParameterError
from repro.service.admission import SaturationGuard
from repro.service.driver import AdversarialTrafficDriver, TrafficReport, replay
from repro.service.gateway import MembershipGateway
from repro.service.sharding import HashShardPicker, KeyedShardPicker


def make_gateway(m: int = 512, **kwargs) -> MembershipGateway:
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("picker", HashShardPicker())
    return MembershipGateway(lambda: BloomFilter(m, 4), **kwargs)


def small_workload(**overrides) -> dict:
    workload = dict(
        honest_clients=2,
        honest_inserts=60,
        honest_queries=60,
        batch=8,
        pollution_inserts=40,
        ghost_queries=8,
        ghost_min_fill=0.1,
        target_shard=0,
        probe_queries=120,
    )
    workload.update(overrides)
    return workload


def test_crafted_pollution_aims_at_target_shard():
    gateway = make_gateway()
    driver = AdversarialTrafficDriver(gateway, seed=5, max_trials=100_000)
    report = TrafficReport()
    items = driver.craft_pollution(0, 12, report)
    assert len(items) == 12
    assert report.pollution_crafted == 12
    assert report.pollution_trials >= 12
    # Every crafted item routes to the target shard and pollutes it:
    # k fresh bits per insert, by the paper's eq. (6) predicate.
    before = gateway.filters[0].hamming_weight
    for item in items:
        assert gateway.shard_of(item) == 0
        gateway.filters[0].add(item)
    assert gateway.filters[0].hamming_weight == before + 12 * 4


def test_crafted_ghosts_hit_polluted_shard():
    gateway = make_gateway()
    shard0 = gateway.filters[0]
    # Pre-fill the shard so ghost forging is affordable.
    filler = AdversarialTrafficDriver(gateway, seed=9, max_trials=100_000)
    report = TrafficReport()
    for item in filler.craft_pollution(0, 30, report):
        shard0.add(item)
    ghosts = filler.craft_ghosts(0, 6, report)
    assert len(ghosts) == 6
    assert report.ghost_crafted == 6
    for ghost in ghosts:
        assert gateway.shard_of(ghost) == 0
        assert ghost in shard0  # a false positive by construction


def test_replay_reports_consistent_counts():
    gateway = make_gateway(guard=SaturationGuard(0.35))
    driver = AdversarialTrafficDriver(gateway, seed=11, max_trials=100_000)
    report = asyncio.run(driver.run(**small_workload()))
    assert report.honest_inserts == 60
    assert report.honest_queries == 60
    assert report.probe_queries == 120
    assert report.elapsed_s > 0
    assert report.operations > 0
    assert report.throughput > 0
    assert len(report.snapshots) == 4
    # The aimed attack concentrates inserts on the target shard.
    inserts = [s.inserts for s in report.snapshots]
    assert inserts[0] == max(inserts)
    rendered = report.render()
    assert "pollution" in rendered and "shard" in rendered


def test_replay_triggers_rotation_under_aimed_pollution():
    gateway = make_gateway(m=256, guard=SaturationGuard(0.35))
    driver = AdversarialTrafficDriver(gateway, seed=2, max_trials=100_000)
    report = asyncio.run(driver.run(**small_workload(pollution_inserts=60)))
    assert report.rotations >= 1
    assert gateway.rotation_log[0].shard_id == 0


def test_keyed_routing_disperses_misrouted_attack():
    # Gateway routes with a secret key; the adversary aims via the
    # public hash, so its crafted stream scatters across shards.
    gateway = make_gateway(picker=KeyedShardPicker(bytes(16)))
    driver = AdversarialTrafficDriver(
        gateway, seed=5, attacker_router=HashShardPicker(), max_trials=100_000
    )
    report = TrafficReport()
    items = driver.craft_pollution(0, 16, report)
    landed = [gateway.shard_of(item) for item in items]
    assert len(set(landed)) > 1  # no longer concentrated on shard 0


def test_ghost_amplification_exceeds_honest_baseline():
    gateway = make_gateway(guard=None)
    driver = AdversarialTrafficDriver(gateway, seed=23, max_trials=100_000)
    report = asyncio.run(driver.run(**small_workload(ghost_queries=12)))
    assert report.ghost_queries > 0
    assert report.ghost_hit_rate > report.honest_fp_rate
    assert report.amplification > 1


def test_replay_sync_wrapper():
    gateway = make_gateway()
    report = replay(gateway, **small_workload(pollution_inserts=0, ghost_queries=0))
    assert isinstance(report, TrafficReport)
    assert report.pollution_crafted == 0
    assert report.ghost_queries == 0
    assert report.amplification == 0.0


def test_driver_validation():
    gateway = make_gateway()
    with pytest.raises(ParameterError):
        AdversarialTrafficDriver(gateway, craft_chunk=0)
    driver = AdversarialTrafficDriver(gateway)
    with pytest.raises(ParameterError):
        asyncio.run(driver.run(honest_clients=-1))


def test_empty_report_properties():
    report = TrafficReport()
    assert report.throughput == 0.0
    assert report.honest_fp_rate == 0.0
    assert report.ghost_hit_rate == 0.0
    assert report.amplification == 0.0
    assert report.latency_mean_probes == 0.0


def test_latency_workload_crafts_worst_case_negatives():
    gateway = make_gateway(guard=None)
    driver = AdversarialTrafficDriver(gateway, seed=31, max_trials=100_000)
    # Pre-fill the target shard so latency forging is affordable.
    report = TrafficReport()
    for item in driver.craft_pollution(0, 40, report):
        gateway.filters[0].add(item)
    items = driver.craft_latency_queries(0, 10, report)
    assert len(items) == 10
    assert report.latency_crafted == 10
    shard0 = gateway.filters[0]
    for item in items:
        # Routed at the target shard, k-1 set bits then one unset: a
        # negative that walks the whole short-circuit loop.
        assert gateway.shard_of(item) == 0
        indexes = shard0.indexes(item)
        assert all(shard0.bits.get(i) for i in indexes[:-1])
        assert not shard0.bits.get(indexes[-1])
        assert item not in shard0
    # Every crafted item forces all k probes.
    assert report.latency_mean_probes == 4.0


def test_replay_with_latency_stream_reports_counters():
    gateway = make_gateway(guard=None)
    driver = AdversarialTrafficDriver(gateway, seed=13, max_trials=100_000)
    report = asyncio.run(
        driver.run(
            **small_workload(
                ghost_queries=0, latency_queries=12, latency_min_fill=0.05
            )
        )
    )
    assert report.latency_queries == 12
    assert report.latency_crafted >= 12
    assert report.latency_mean_probes == 4.0
    # Latency queries are negatives: they never raise the positive count
    # beyond what honest traffic and FPs produce, but they do run through
    # the telemetry (shard 0 saw them).
    assert report.snapshots[0].queries >= 12
    assert "latency queries: 12" in report.render()
    with pytest.raises(ParameterError):
        asyncio.run(driver.run(latency_queries=-1))


def test_replay_over_tcp_transport_matches_inproc_counts():
    """The transport knob: identical seeded workload, same counts."""
    from repro.service.client import MembershipClient
    from repro.service.server import MembershipServer

    workload = small_workload(pollution_inserts=0, ghost_queries=0)

    async def over_tcp():
        gateway = make_gateway()
        async with MembershipServer(gateway) as server:
            client = MembershipClient(*server.address)
            driver = AdversarialTrafficDriver(gateway, seed=11, transport=client)
            report = await driver.run(**workload)
            await client.aclose()
            return report

    tcp_report = asyncio.run(over_tcp())
    inproc_driver = AdversarialTrafficDriver(make_gateway(), seed=11)
    inproc_report = asyncio.run(inproc_driver.run(**workload))

    for field in ("honest_inserts", "honest_queries", "operations",
                  "probe_queries", "probe_false_positives"):
        assert getattr(tcp_report, field) == getattr(inproc_report, field)
    assert [s.inserts for s in tcp_report.snapshots] == [
        s.inserts for s in inproc_report.snapshots
    ]
