"""The TCP wire layer end to end: server + client against a live gateway."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.bloom import BloomFilter
from repro.exceptions import ParameterError, ProtocolError
from repro.service.admission import ClientRateLimiter, RateLimited
from repro.service.client import MembershipClient
from repro.service.codec import encode_frame
from repro.service.gateway import MembershipGateway
from repro.service.server import MembershipServer
from repro.urlgen.faker import UrlFactory

URLS = UrlFactory(seed=0x7C9).urls(200)


def make_gateway(**kwargs) -> MembershipGateway:
    kwargs.setdefault("shards", 4)
    return MembershipGateway(lambda: BloomFilter(1024, 4), **kwargs)


def serve(coro_factory, **gateway_kwargs):
    """Run ``coro_factory(gateway, client)`` against a live server."""

    async def scenario():
        gateway = make_gateway(**gateway_kwargs)
        async with MembershipServer(gateway) as server:
            client = MembershipClient(*server.address)
            try:
                return await coro_factory(gateway, client)
            finally:
                await client.aclose()

    return asyncio.run(scenario())


def test_insert_query_round_trip_over_tcp():
    async def scenario(gateway, client):
        inserted = await client.insert_batch(URLS[:60])
        hits = await client.query_batch(URLS[:80])
        single = await client.query(URLS[0])
        fresh = await client.insert("http://fresh.example")
        return inserted, hits, single, fresh, gateway

    inserted, hits, single, fresh, gateway = serve(scenario)
    assert inserted == [False] * 60
    assert hits[:60] == [True] * 60
    assert single is True
    assert fresh is False
    # The wire answers match the gateway's own view exactly.
    direct = asyncio.run(gateway.query_batch(URLS[:80]))
    assert hits == direct


def test_wire_answers_equal_inproc_answers():
    """The same seeded traffic gives identical answers on either path."""

    async def over_wire(gateway, client):
        await client.insert_batch(URLS[:100])
        return await client.query_batch(URLS[50:150])

    wire_answers = serve(over_wire)

    async def in_process():
        gateway = make_gateway()
        await gateway.insert_batch(URLS[:100])
        return await gateway.query_batch(URLS[50:150])

    assert wire_answers == asyncio.run(in_process())


def test_stats_over_tcp():
    async def scenario(gateway, client):
        await client.insert_batch(URLS[:64], client="alice")
        return await client.stats()

    stats = serve(scenario)
    assert len(stats) == 4
    assert sum(s["inserts"] for s in stats) == 64
    assert all(s["query_p99_us"] >= 0 for s in stats)


def test_rate_limited_surfaces_as_rate_limited():
    async def scenario(gateway, client):
        await client.insert_batch(URLS[:10], client="mallory")  # drains burst
        with pytest.raises(RateLimited):
            await client.query_batch(URLS[:5], client="mallory")
        # Another client id still gets through on the same connection.
        return await client.query_batch(URLS[:5], client="alice")

    answers = serve(
        scenario, limiter=ClientRateLimiter(rate=1.0, burst=10, clock=lambda: 0.0)
    )
    assert len(answers) == 5


def test_over_burst_batch_surfaces_as_parameter_error():
    async def scenario(gateway, client):
        with pytest.raises(ParameterError, match="burst"):
            await client.insert_batch(URLS[:17], client="bulk")
        return await client.insert_batch(URLS[:16], client="bulk")

    answers = serve(
        scenario, limiter=ClientRateLimiter(rate=100.0, burst=16, clock=lambda: 0.0)
    )
    assert len(answers) == 16


def test_garbage_frame_drops_connection_but_not_server():
    async def scenario(gateway, client):
        host, port = client.host, client.port
        # A raw socket speaking garbage gets a protocol-error reply (or a
        # straight close) and the connection is dropped ...
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"\xff\xff\xff\xff garbage beyond any length prefix")
        await writer.drain()
        eof = await reader.read(4096)  # error frame and/or EOF
        writer.close()
        await writer.wait_closed()
        # ... while the well-behaved client keeps working.
        answers = await client.query_batch(URLS[:4])
        return eof, answers

    eof, answers = serve(scenario)
    assert answers == [False] * 4


def test_truncated_frame_then_new_connection_survives():
    async def scenario(gateway, client):
        host, port = client.host, client.port
        reader, writer = await asyncio.open_connection(host, port)
        # Announce 100 bytes, send 3, hang up.
        writer.write((100).to_bytes(4, "big") + b"abc")
        await writer.drain()
        writer.close()
        await writer.wait_closed()
        return await client.insert_batch(URLS[:8])

    assert serve(scenario) == [False] * 8


def test_protocol_error_counter_increments():
    async def full():
        gateway = make_gateway()
        async with MembershipServer(gateway) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"\x00\x00\x00\x00")  # zero-length frame
            await writer.drain()
            await reader.read(4096)
            writer.close()
            await writer.wait_closed()
            return server.protocol_errors, server.connections

    errors, connections = asyncio.run(full())
    assert errors == 1
    assert connections == 1


def test_concurrent_clients_over_one_pool():
    async def scenario(gateway, client):
        async def worker(offset: int):
            chunk = URLS[offset : offset + 20]
            await client.insert_batch(chunk, client=f"w{offset}")
            return await client.query_batch(chunk, client=f"w{offset}")

        results = await asyncio.gather(*(worker(i * 20) for i in range(5)))
        return results

    results = serve(scenario)
    assert all(answers == [True] * 20 for answers in results)


def test_client_refuses_use_after_close():
    async def scenario():
        gateway = make_gateway()
        async with MembershipServer(gateway) as server:
            client = MembershipClient(*server.address)
            await client.query_batch(URLS[:2])
            await client.aclose()
            with pytest.raises(ProtocolError, match="closed"):
                await client.query_batch(URLS[:2])

    asyncio.run(scenario())


def test_server_lifecycle_guards():
    async def scenario():
        gateway = make_gateway()
        server = MembershipServer(gateway)
        with pytest.raises(ProtocolError, match="not started"):
            server.address
        await server.start()
        with pytest.raises(ProtocolError, match="already started"):
            await server.start()
        await server.aclose()
        await server.aclose()  # idempotent

    asyncio.run(scenario())
