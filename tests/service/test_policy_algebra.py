"""The defence-policy algebra: combinators, the spec grammar, stateful
wrapper scratch, and its persistence through gateway snapshots."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.bloom import BloomFilter
from repro.exceptions import ConfigError, ParameterError
from repro.service.backends import ShardState
from repro.service.config import ServiceConfig
from repro.service.gateway import MembershipGateway
from repro.service.lifecycle import (
    KEEP,
    AdaptivePositiveRatePolicy,
    AllOf,
    AnyOf,
    Cooldown,
    FillThresholdPolicy,
    Hysteresis,
    NeverRotatePolicy,
    Not,
    RotateOnRestorePolicy,
    ShardLifecycleState,
    ShardObservation,
    TimeBasedRecyclingPolicy,
    parse_policy,
)
from repro.service.sharding import HashShardPicker
from repro.service.snapshots import restore_gateway, snapshot_gateway
from repro.urlgen.faker import UrlFactory

URLS = UrlFactory(seed=0xA16E).urls(400)


def observation(**overrides) -> ShardObservation:
    base = dict(
        shard_id=0,
        hamming_weight=100,
        fill_ratio=0.1,
        insertions=40,
        age_ops=40,
        inserts=40,
        queries=0,
        positives=0,
        restored=False,
        ops_since_restore=40,
        op_epoch=40,
    )
    base.update(overrides)
    return ShardObservation(**base)


# ----------------------------------------------------------------------
# Pure combinator semantics
# ----------------------------------------------------------------------


def test_all_of_requires_every_vote():
    policy = AllOf([FillThresholdPolicy(0.5), TimeBasedRecyclingPolicy(100)])
    assert not policy.decide(observation(fill_ratio=0.6, age_ops=50)).rotate
    assert not policy.decide(observation(fill_ratio=0.4, age_ops=150)).rotate
    decision = policy.decide(observation(fill_ratio=0.6, age_ops=150))
    assert decision.rotate
    assert decision.reason == "fill_ratio>=0.5 & age_ops>=100"


def test_any_of_takes_the_first_rotating_reason():
    policy = AnyOf([FillThresholdPolicy(0.5), TimeBasedRecyclingPolicy(100)])
    assert not policy.decide(observation(fill_ratio=0.1, age_ops=10)).rotate
    assert policy.decide(observation(fill_ratio=0.6, age_ops=10)).reason == "fill_ratio>=0.5"
    assert policy.decide(observation(fill_ratio=0.1, age_ops=150)).reason == "age_ops>=100"


def test_combinators_need_two_children():
    for bad in (
        lambda: AllOf([FillThresholdPolicy(0.5)]),
        lambda: AnyOf([]),
    ):
        with pytest.raises(ParameterError):
            bad()


def test_not_inverts_and_guards():
    veto = Not(FillThresholdPolicy(0.5))
    assert veto.decide(observation(fill_ratio=0.1)).rotate
    assert not veto.decide(observation(fill_ratio=0.9)).rotate
    # The intended use: an AllOf guard ("recycle on age, except while
    # the filter is saturated enough to be under active study").
    guarded = AllOf([TimeBasedRecyclingPolicy(100), Not(FillThresholdPolicy(0.9))])
    assert guarded.decide(observation(age_ops=150, fill_ratio=0.2)).rotate
    assert not guarded.decide(observation(age_ops=150, fill_ratio=0.95)).rotate


def test_needs_recent_propagates_through_the_tree():
    windowed = AdaptivePositiveRatePolicy(0.8, 16, window=32)
    assert AllOf([FillThresholdPolicy(0.5), windowed]).needs_recent
    assert not AllOf([FillThresholdPolicy(0.5), TimeBasedRecyclingPolicy(5)]).needs_recent
    assert AnyOf([NeverRotatePolicy(), windowed]).needs_recent
    assert Not(windowed).needs_recent
    assert Cooldown(10, windowed).needs_recent
    assert not Cooldown(10, FillThresholdPolicy(0.5)).needs_recent
    assert Hysteresis(2, windowed).needs_recent


# ----------------------------------------------------------------------
# Cooldown
# ----------------------------------------------------------------------


def test_cooldown_refuses_young_rotations_and_tallies():
    life = ShardLifecycleState(0)
    policy = Cooldown(100, FillThresholdPolicy(0.5))
    # Inner keeps: cooldown passes the keep through, no tally.
    assert not policy.decide(observation(fill_ratio=0.1, age_ops=10), life).rotate
    assert life.suppressed == 0
    # Inner rotates but the filter is young: refused and tallied.
    refused = policy.decide(observation(fill_ratio=0.8, age_ops=10), life)
    assert not refused.rotate
    assert refused.reason == "cooldown<100"
    assert life.suppressed == 1
    # Old enough: the rotation passes with the inner reason.
    passed = policy.decide(observation(fill_ratio=0.8, age_ops=100), life)
    assert passed.rotate and passed.reason == "fill_ratio>=0.5"
    assert life.suppressed == 1
    with pytest.raises(ParameterError):
        Cooldown(0, FillThresholdPolicy(0.5))


def test_cooldown_without_life_still_decides():
    policy = Cooldown(100, FillThresholdPolicy(0.5))
    assert not policy.evaluate(observation(fill_ratio=0.8, age_ops=10)).rotate
    assert policy.evaluate(observation(fill_ratio=0.8, age_ops=200)).rotate


# ----------------------------------------------------------------------
# Hysteresis
# ----------------------------------------------------------------------


def test_hysteresis_needs_consecutive_votes():
    life = ShardLifecycleState(0)
    policy = Hysteresis(3, FillThresholdPolicy(0.5))
    key = policy.spec()
    hot = observation(fill_ratio=0.8)
    cold = observation(fill_ratio=0.1)
    assert not policy.decide(hot, life).rotate
    assert life.streaks[key] == 1
    assert not policy.decide(hot, life).rotate
    assert life.streaks[key] == 2
    # A keep vote resets the streak.
    assert not policy.decide(cold, life).rotate
    assert life.streaks[key] == 0
    # Three consecutive rotate votes fire, and the streak clears.
    for _ in range(2):
        assert not policy.decide(hot, life).rotate
    decision = policy.decide(hot, life)
    assert decision.rotate
    assert decision.reason == "hold3:fill_ratio>=0.5"
    assert life.streaks[key] == 0
    with pytest.raises(ParameterError):
        Hysteresis(0, FillThresholdPolicy(0.5))


def test_hysteresis_transient_fallback_is_per_shard():
    policy = Hysteresis(2, FillThresholdPolicy(0.5))
    hot0 = observation(shard_id=0, fill_ratio=0.8)
    hot1 = observation(shard_id=1, fill_ratio=0.8)
    assert not policy.decide(hot0).rotate
    assert not policy.decide(hot1).rotate  # shard 1's streak is its own
    assert policy.decide(hot0).rotate
    assert policy.decide(hot1).rotate


def test_duplicate_hysteresis_twins_keep_separate_streaks():
    # Two identical wrappers in one tree must not share a streak entry:
    # each bumps its own key once per decision, so a hold-2 pair still
    # needs two *batches*, not one, to fire.
    life = ShardLifecycleState(0)
    policy = parse_policy("hysteresis:2(fill:0.5)|hysteresis:2(fill:0.5)")
    first, second = policy.children
    assert first.streak_key == "hysteresis:2(fill:0.5)"
    assert second.streak_key == "hysteresis:2(fill:0.5)#2"
    hot = observation(fill_ratio=0.8)
    assert not policy.decide(hot, life).rotate  # one spiky batch: held
    assert life.streaks == {first.streak_key: 1, second.streak_key: 1}
    assert policy.decide(hot, life).rotate  # the second consecutive one
    # Re-parsing the same spec rebuilds the same keys, so snapshotted
    # streaks stay attached across a restart.
    reparsed = parse_policy(policy.spec())
    assert [c.streak_key for c in reparsed.children] == [
        first.streak_key,
        second.streak_key,
    ]


def test_restore_wrapping_a_negation_round_trips():
    policy = RotateOnRestorePolicy(5, inner=Not(FillThresholdPolicy(0.5)))
    assert policy.spec() == "restore:5+(!fill:0.5)"
    rebuilt = parse_policy(policy.spec())
    assert rebuilt.spec() == policy.spec()
    assert isinstance(rebuilt.inner, Not)


def test_streaks_clear_on_lifecycle_reset_but_tally_survives():
    life = ShardLifecycleState(0)
    life.streaks["hysteresis:2(fill:0.5)"] = 1
    life.suppressed = 4
    life.reset()
    assert life.streaks == {}
    assert life.suppressed == 4  # cumulative operator counter


# ----------------------------------------------------------------------
# Grammar: composed specs, round trips, rejection
# ----------------------------------------------------------------------


def test_composed_specs_round_trip():
    for spec in (
        "(adaptive:0.8:24:32&fill:0.5)|age:4000",
        "cooldown:200(adaptive:0.8:24:32)",
        "cooldown:200(hysteresis:2(adaptive:0.85:24:32))",
        "hysteresis:3(fill:0.5&age:100)",
        "fill:0.5&age:100&!adaptive:0.9:16",
        "!(fill:0.5|age:100)",
        "restore:10+(fill:0.5|age:100)",
        "restore:10+cooldown:50(fill:0.5)",
        "never|fill:0.9",
        "cooldown:150(adaptive:0.6:32)&fill:0.2",
    ):
        policy = parse_policy(spec)
        assert parse_policy(policy.spec()).spec() == policy.spec(), spec


def test_parse_builds_the_expected_tree():
    policy = parse_policy("(adaptive:0.8:24:32&fill:0.5)|age:4000")
    assert isinstance(policy, AnyOf)
    conjunction, age = policy.children
    assert isinstance(conjunction, AllOf)
    assert isinstance(age, TimeBasedRecyclingPolicy)
    adaptive, fill = conjunction.children
    assert isinstance(adaptive, AdaptivePositiveRatePolicy)
    assert adaptive.window == 32
    assert isinstance(fill, FillThresholdPolicy)

    wrapped = parse_policy("cooldown:200(hysteresis:2(adaptive:0.85:24:32))")
    assert isinstance(wrapped, Cooldown) and wrapped.ops == 200
    assert isinstance(wrapped.inner, Hysteresis) and wrapped.inner.hold == 2

    restore = parse_policy("restore:10+(fill:0.5|age:100)")
    assert isinstance(restore, RotateOnRestorePolicy)
    assert isinstance(restore.inner, AnyOf)


def test_operator_precedence_and_wins_over_or():
    # a|b&c parses as a|(b&c), matching the documented precedence.
    policy = parse_policy("age:4000|adaptive:0.9:16&fill:0.5")
    assert isinstance(policy, AnyOf)
    assert isinstance(policy.children[0], TimeBasedRecyclingPolicy)
    assert isinstance(policy.children[1], AllOf)


def test_parse_rejects_trailing_garbage_with_config_error():
    # The historical bug class: a valid prefix followed by junk must be
    # rejected, never silently accepted.
    for bad in (
        "fill:0.5xyz",
        "fill:0.5)",
        "(fill:0.5",
        "fill:0.5 age:4000",
        "fill:0.5&",
        "fill:0.5|",
        "fill:0.5&&age:4",
        "!(fill:0.5))",
        "cooldown:5",
        "cooldown:5 fill:0.5",
        "hysteresis:2()",
        "fill:0.5+age:100",
        "age:4_000",
        "fill:nan",
        "fill:inf",
        "fill:+0.5",
        "adaptive:0.8:",
        "",
        "   ",
        "&",
        "!",
    ):
        with pytest.raises(ConfigError):
            parse_policy(bad)
    # ConfigError is a ParameterError, so pre-grammar callers still work.
    assert issubclass(ConfigError, ParameterError)


def test_service_config_validates_composed_specs():
    config = ServiceConfig(
        rotation_threshold=None,
        rotation_policy="cooldown:200(hysteresis:2(adaptive:0.85:24:32))",
    )
    gateway = MembershipGateway.from_config(config)
    assert isinstance(gateway.policy, Cooldown)
    with pytest.raises(ConfigError):
        ServiceConfig(rotation_policy="fill:0.5xyz")


# ----------------------------------------------------------------------
# Gateway integration: the composed defence live, over real traffic
# ----------------------------------------------------------------------


def shard0_heavy_urls(gateway: MembershipGateway, count: int) -> list[str]:
    factory = UrlFactory(seed=77)
    out: list[str] = []
    while len(out) < count:
        url = factory.url()
        if gateway.shard_of(url) == 0:
            out.append(url)
    return out


def build_gateway(policy) -> MembershipGateway:
    return MembershipGateway(
        lambda: BloomFilter(512, 4),
        shards=2,
        picker=HashShardPicker(),
        policy=policy,
    )


def test_cooldown_suppresses_live_rotation_and_shows_in_telemetry():
    # The inner tripwire would rotate on the re-query storm, but the
    # filter is younger than the cool-down: refused, tallied, visible.
    policy = parse_policy("cooldown:100000(adaptive:0.6:16)")
    with build_gateway(policy) as gateway:
        targeted = shard0_heavy_urls(gateway, 60)
        asyncio.run(gateway.insert_batch(targeted[:30]))
        asyncio.run(gateway.query_batch(targeted[:30]))
        assert gateway.rotations == 0
        assert gateway.lifecycle[0].suppressed >= 1
        snapshot = gateway.snapshot()[0]
        assert snapshot.rotations_suppressed == gateway.lifecycle[0].suppressed
        assert "suppressed" in gateway.render_stats()


def test_hysteresis_delays_live_rotation_until_the_storm_persists():
    policy = parse_policy("hysteresis:3(adaptive:0.6:8)")
    with build_gateway(policy) as gateway:
        targeted = shard0_heavy_urls(gateway, 80)
        asyncio.run(gateway.insert_batch(targeted[:40]))
        # One spiky batch is not a campaign: no rotation yet.
        asyncio.run(gateway.query_batch(targeted[:10]))
        assert gateway.rotations == 0
        assert gateway.lifecycle[0].streaks[policy.spec()] >= 1
        # Two more all-positive batches complete the streak.
        asyncio.run(gateway.query_batch(targeted[10:20]))
        asyncio.run(gateway.query_batch(targeted[20:30]))
        assert gateway.rotations == 1
        assert gateway.rotation_log[0].reason == "hold3:positive_rate>=0.6"
        # The rotation cleared the streak with the rest of the history.
        assert gateway.lifecycle[0].streaks == {}


def test_composed_scratch_survives_snapshot_round_trip():
    spec = "cooldown:100000(hysteresis:4(adaptive:0.6:16))"
    policy = parse_policy(spec)
    with build_gateway(policy) as gateway:
        targeted = shard0_heavy_urls(gateway, 60)
        asyncio.run(gateway.insert_batch(targeted[:30]))
        asyncio.run(gateway.query_batch(targeted[:20]))
        life = gateway.lifecycle[0]
        assert life.streaks or life.suppressed  # scratch is non-trivial
        raw = snapshot_gateway(gateway)
        with build_gateway(parse_policy(spec)) as restored:
            restore_gateway(restored, raw)
            for before, after in zip(gateway.lifecycle, restored.lifecycle):
                assert after.streaks == before.streaks
                assert after.suppressed == before.suppressed
            # The restored gateway keeps counting from where it left off.
            asyncio.run(restored.query_batch(targeted[20:30]))
            assert restored.lifecycle[0].suppressed >= gateway.lifecycle[0].suppressed


def test_all_branches_keep_seeing_observations():
    # No short-circuiting: the hysteresis branch of an AnyOf builds its
    # streak even while the other branch never fires.
    life = ShardLifecycleState(0)
    streaky = Hysteresis(2, FillThresholdPolicy(0.5))
    policy = AnyOf([NeverRotatePolicy(), streaky])
    hot = observation(fill_ratio=0.8)
    assert not policy.decide(hot, life).rotate
    assert life.streaks[streaky.spec()] == 1
    assert policy.decide(hot, life).rotate


def test_keep_decision_is_shared_constant():
    assert not KEEP.rotate and KEEP.reason == "keep"
