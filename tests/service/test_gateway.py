"""The membership gateway: routing, batching, rotation, admission, stats."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.bloom import BloomFilter
from repro.countermeasures.keyed import KeyedBloomFilter
from repro.exceptions import ParameterError
from repro.service.admission import ClientRateLimiter, RateLimited, SaturationGuard
from repro.service.config import ServiceConfig
from repro.service.gateway import MembershipGateway
from repro.service.sharding import KeyedShardPicker
from repro.urlgen.faker import UrlFactory

URLS = UrlFactory(seed=0x6A7E).urls(200)


def make_gateway(**kwargs) -> MembershipGateway:
    kwargs.setdefault("shards", 4)
    return MembershipGateway(lambda: BloomFilter(1024, 4), **kwargs)


def test_insert_then_query_round_trip():
    gateway = make_gateway()

    async def scenario():
        for url in URLS[:30]:
            await gateway.insert(url)
        hits = [await gateway.query(url) for url in URLS[:30]]
        return hits

    assert all(asyncio.run(scenario()))


def test_batch_matches_singles_and_shard_state():
    gateway = make_gateway()

    async def scenario():
        await gateway.insert_batch(URLS[:50])
        batched = await gateway.query_batch(URLS[:80])
        singles = [await gateway.query(url) for url in URLS[:80]]
        return batched, singles

    batched, singles = asyncio.run(scenario())
    assert batched == singles
    assert batched[:50] == [True] * 50
    # Every item lives in exactly the shard the router names.
    for url in URLS[:50]:
        assert url in gateway.filters[gateway.shard_of(url)]


def test_batch_results_keep_input_order():
    gateway = make_gateway()

    async def scenario():
        await gateway.insert_batch(URLS[:40])
        # Interleave known-present and fresh items.
        mixed = [u for pair in zip(URLS[:20], URLS[100:120]) for u in pair]
        answers = await gateway.query_batch(mixed)
        expected = [await gateway.query(u) for u in mixed]
        return answers, expected

    answers, expected = asyncio.run(scenario())
    assert answers == expected
    assert answers[0::2] == [True] * 20  # the inserted half, in place


def test_empty_batch_is_noop():
    gateway = make_gateway()

    async def scenario():
        return await gateway.insert_batch([]), await gateway.query_batch([])

    assert asyncio.run(scenario()) == ([], [])


def test_saturation_guard_rotates_hot_shard():
    gateway = make_gateway(guard=SaturationGuard(0.3))

    async def scenario():
        # Hammer one shard's key space until its filter crosses 30% fill.
        shard0 = [url for url in URLS if gateway.shard_of(url) == 0]
        factory = UrlFactory(seed=77)
        while len(shard0) < 120:
            url = factory.url()
            if gateway.shard_of(url) == 0:
                shard0.append(url)
        await gateway.insert_batch(shard0)

    asyncio.run(scenario())
    assert gateway.rotations >= 1
    event = gateway.rotation_log[0]
    assert event.shard_id == 0
    assert event.retired_fill >= 0.3
    assert event.retired_weight > 0
    # The replacement shard is fresh (weight far below the retired one).
    assert gateway.filters[0].fill_ratio < 0.3
    assert gateway.snapshot()[0].rotations == gateway.rotations


def test_rate_limited_batch_is_rejected_whole():
    gateway = make_gateway(
        limiter=ClientRateLimiter(rate=1.0, burst=10, clock=lambda: 0.0)
    )

    async def scenario():
        await gateway.insert_batch(URLS[:10], client="mallory")  # drains burst
        with pytest.raises(RateLimited):
            await gateway.query_batch(URLS[:5], client="mallory")
        # Another client still gets through.
        return await gateway.query_batch(URLS[:5], client="alice")

    answers = asyncio.run(scenario())
    assert len(answers) == 5
    # The rejected batch never reached a shard.
    assert sum(s.queries for s in gateway.snapshot()) == 5


def test_over_burst_batch_rejected_permanently():
    # A batch larger than the bucket's burst can never be admitted, so
    # the gateway must fail it with a non-retryable error, not the
    # retryable RateLimited (a backing-off client would livelock).
    gateway = make_gateway(
        limiter=ClientRateLimiter(rate=100.0, burst=16, clock=lambda: 0.0)
    )
    assert gateway.max_batch == 16

    async def scenario():
        with pytest.raises(ParameterError, match="burst"):
            await gateway.insert_batch(URLS[:17], client="bulk")
        return await gateway.insert_batch(URLS[:16], client="bulk")

    assert len(asyncio.run(scenario())) == 16
    assert make_gateway().max_batch is None  # unlimited admission


def test_telemetry_counts_and_latency():
    gateway = make_gateway()

    async def scenario():
        await gateway.insert_batch(URLS[:64])
        await gateway.query_batch(URLS[:64])

    asyncio.run(scenario())
    snaps = gateway.snapshot()
    assert sum(s.inserts for s in snaps) == 64
    assert sum(s.queries for s in snaps) == 64
    assert sum(s.positives for s in snaps) == 64
    assert all(s.query_p99_us >= s.query_p50_us >= 0 for s in snaps)
    table = gateway.render_stats()
    assert "shard" in table and "fill" in table


def test_from_config_builds_variants():
    plain = MembershipGateway.from_config(ServiceConfig(shards=2, shard_m=512))
    assert plain.shards == 2
    assert isinstance(plain.filters[0], BloomFilter)
    assert plain.guard is not None

    keyed = MembershipGateway.from_config(
        ServiceConfig(shards=2, keyed_routing=True, keyed_filters=True, rate_limit=10.0)
    )
    assert isinstance(keyed.picker, KeyedShardPicker)
    assert isinstance(keyed.filters[0], KeyedBloomFilter)
    assert keyed.limiter.rate == 10.0

    unguarded = MembershipGateway.from_config(ServiceConfig(rotation_threshold=None))
    assert unguarded.guard is None


def test_from_config_pinned_keys_rebuild_identically():
    config = ServiceConfig(
        shards=4,
        shard_m=512,
        keyed_routing=True,
        keyed_filters=True,
        routing_key=bytes(range(16)),
        filter_key=bytes(16),
    )
    a = MembershipGateway.from_config(config)
    b = MembershipGateway.from_config(config)
    for url in URLS[:40]:
        assert a.shard_of(url) == b.shard_of(url)
        shard = a.shard_of(url)
        assert a.filters[shard].indexes(url) == b.filters[shard].indexes(url)
    with pytest.raises(ParameterError):
        ServiceConfig(routing_key=b"short")


def test_from_config_process_backend():
    from repro.service.backends import ProcessPoolBackend

    config = ServiceConfig(shards=2, shard_m=512, backend="process")
    with MembershipGateway.from_config(config) as gateway:
        assert isinstance(gateway.backend, ProcessPoolBackend)
        assert gateway.shards == 2

        async def scenario():
            await gateway.insert_batch(URLS[:40])
            return await gateway.query_batch(URLS[:60])

        answers = asyncio.run(scenario())
        assert answers[:40] == [True] * 40


def test_from_config_process_backend_keyed_filters_are_deterministic():
    # An unpinned filter key is resolved once at build time for process
    # backends, so the parent's white-box views agree with the workers.
    from repro.service.backends import ProcessPoolBackend

    config = ServiceConfig(
        shards=2, shard_m=512, keyed_filters=True, backend="process"
    )
    with MembershipGateway.from_config(config) as gateway:
        assert isinstance(gateway.backend, ProcessPoolBackend)
        asyncio.run(gateway.insert_batch(URLS[:30]))
        for url in URLS[:30]:
            assert url in gateway.shard_view(gateway.shard_of(url))


def test_config_validation():
    for bad in (
        dict(shards=0),
        dict(shard_m=-1),
        dict(rotation_threshold=0.0),
        dict(rotation_threshold=1.5),
        dict(rate_limit=-3.0),
        dict(burst=0),
        dict(backend="grpc"),
    ):
        with pytest.raises(ParameterError):
            ServiceConfig(**bad)
    assert ServiceConfig(shards=3, shard_m=100).total_bits == 300


def test_gateway_rejects_bad_shard_count():
    with pytest.raises(ParameterError):
        make_gateway(shards=0)
