"""Zero-copy codec path: frame-encoder parity and hostile payloads.

The single-buffer ``*_frame`` encoders must emit byte-identical frames
to ``encode_frame(encode_*(...))``, decoding must accept zero-copy
memoryview input, and every malformed shape -- truncated length prefix,
oversized declared lengths, mid-frame EOF, trailing garbage -- must be
rejected with :class:`ProtocolError` before any allocation or partial
state.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.exceptions import ProtocolError
from repro.service.codec import (
    FRAME_V2,
    MAX_FRAME,
    OP_HANDOFF,
    OP_INSERT_BATCH,
    OP_QUERY,
    OP_QUERY_BATCH,
    OP_STATS,
    ST_ERROR,
    ST_NOT_OWNER,
    ST_OK,
    ST_RATE_LIMITED,
    Redirect,
    decode_request,
    decode_request_envelope,
    decode_response,
    decode_response_envelope,
    encode_answers,
    encode_answers_frame,
    encode_error,
    encode_error_frame,
    encode_frame,
    encode_handoff_frame,
    encode_not_owner,
    encode_not_owner_frame,
    encode_request,
    encode_request_frame,
    encode_stats,
    encode_stats_frame,
    read_frame,
)
from repro.service.telemetry import ShardSnapshot


def _snapshots() -> list[ShardSnapshot]:
    return [
        ShardSnapshot(
            shard_id=0,
            inserts=900,
            queries=40,
            positives=5,
            rotations=1,
            weight=800,
            fill_ratio=0.25,
            query_p50_us=12.5,
            query_p99_us=80.0,
        )
    ]


# ----------------------------------------------------------------------
# Frame-encoder parity with the two-step encode path
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "items,client",
    [
        (["a", b"b", "ünicode", b"\x00\xff" * 10], "client-1"),
        ([], "anon"),
        ([b"x" * 1000], ""),
    ],
)
def test_request_frame_parity(items, client):
    assert encode_request_frame(OP_INSERT_BATCH, items, client) == encode_frame(
        encode_request(OP_INSERT_BATCH, items, client)
    )


def test_single_op_frame_parity():
    assert encode_request_frame(OP_QUERY, ["only"], "c") == encode_frame(
        encode_request(OP_QUERY, ["only"], "c")
    )


@pytest.mark.parametrize("answers", [[True], [False] * 9, [True, False] * 50, []])
def test_answers_frame_parity(answers):
    # An empty answer list is a legal frame (count 0, no bitmap).
    assert encode_answers_frame(answers) == encode_frame(encode_answers(answers))


def test_error_frame_parity():
    message = "rate limited — back off"
    assert encode_error_frame(ST_RATE_LIMITED, message) == encode_frame(
        encode_error(ST_RATE_LIMITED, message)
    )


def test_error_frame_truncates_long_messages_identically():
    message = "é" * 40_000  # 2 bytes each, over the u16 cap
    assert encode_error_frame(ST_ERROR, message) == encode_frame(
        encode_error(ST_ERROR, message)
    )


def test_stats_frame_parity():
    assert encode_stats_frame(_snapshots()) == encode_frame(encode_stats(_snapshots()))


def test_frame_encoders_reject_bad_status_and_oversized():
    with pytest.raises(ProtocolError):
        encode_error_frame(ST_OK, "not an error status")
    with pytest.raises(ProtocolError):
        encode_request_frame(OP_INSERT_BATCH, [b"x" * (MAX_FRAME + 1)], "c")


# ----------------------------------------------------------------------
# Zero-copy decode: memoryview input end to end
# ----------------------------------------------------------------------

def test_decode_request_from_memoryview():
    frame = encode_request_frame(OP_INSERT_BATCH, ["t", b"\x01\x02"], "mv-client")
    request = decode_request(memoryview(frame)[4:])
    assert request.client == "mv-client"
    assert request.items == ["t", b"\x01\x02"]
    # Binary items must be real bytes (copied out of the view), so they
    # survive the frame buffer being released.
    assert all(type(i) in (str, bytes) for i in request.items)


def test_decode_response_from_memoryview():
    frame = encode_answers_frame([True, False, True])
    response = decode_response(memoryview(frame)[4:])
    assert response.status == ST_OK
    assert response.answers == [True, False, True]
    stats_frame = encode_stats_frame(_snapshots())
    response = decode_response(memoryview(stats_frame)[4:])
    assert response.stats[0]["shard_id"] == 0


# ----------------------------------------------------------------------
# Hostile payloads
# ----------------------------------------------------------------------

def test_truncated_item_length_prefix_rejected():
    """Payload ends inside an item's 4-byte length prefix."""
    # A fat first item keeps the remaining payload large enough to pass
    # the up-front item-count plausibility guard; the cut then lands
    # inside the *second* item's length field.
    payload = encode_request(OP_INSERT_BATCH, [b"a" * 64, b"abcd"], "c")
    cut = payload[: -(4 + 2)]  # drop item bytes and half the u32 length
    with pytest.raises(ProtocolError, match="ends inside item length"):
        decode_request(cut)


def test_oversized_declared_item_length_rejected():
    """An item declaring more bytes than the payload holds."""
    payload = bytearray(encode_request(OP_INSERT_BATCH, [b"abcd"], "c"))
    payload[-8:-4] = (2**31).to_bytes(4, "big")  # item length field
    with pytest.raises(ProtocolError, match="ends inside item bytes"):
        decode_request(bytes(payload))


def test_oversized_declared_item_count_rejected_before_allocation():
    payload = bytearray(encode_request(OP_INSERT_BATCH, [b"abcd"], "c"))
    offset = 1 + 2 + 1  # opcode + client len + client "c"
    payload[offset : offset + 4] = (0xFFFFFFFF).to_bytes(4, "big")
    with pytest.raises(ProtocolError, match="item count"):
        decode_request(bytes(payload))


def test_oversized_declared_client_length_rejected():
    payload = bytearray(encode_request(OP_STATS, [], "c"))
    payload[1:3] = (0xFFFF).to_bytes(2, "big")
    with pytest.raises(ProtocolError, match="ends inside client id"):
        decode_request(bytes(payload))


def test_trailing_garbage_after_request_rejected():
    payload = encode_request(OP_INSERT_BATCH, [b"abcd"], "c") + b"\x00"
    with pytest.raises(ProtocolError, match="trailing"):
        decode_request(payload)


def test_trailing_garbage_after_response_rejected():
    for payload in (
        encode_answers([True, False]) + b"junk",
        encode_error(ST_ERROR, "boom") + b"\x00",
        encode_stats(_snapshots()) + b" ",
    ):
        with pytest.raises(ProtocolError, match="trailing"):
            decode_response(payload)


def test_answer_bitmap_short_read_rejected():
    payload = encode_answers([True] * 16)[:-1]
    with pytest.raises(ProtocolError, match="ends inside answer bitmap"):
        decode_response(payload)


def test_stats_declared_length_overrun_rejected():
    payload = bytearray(encode_stats(_snapshots()))
    payload[2:6] = (len(payload) * 2).to_bytes(4, "big")
    with pytest.raises(ProtocolError, match="ends inside stats JSON"):
        decode_response(bytes(payload))


# ----------------------------------------------------------------------
# Mid-frame EOF on the stream reader
# ----------------------------------------------------------------------

def _reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def test_eof_mid_length_prefix():
    async def run():
        with pytest.raises(ProtocolError, match="mid-header"):
            await read_frame(_reader_with(b"\x00\x00"))

    asyncio.run(run())


def test_eof_mid_payload():
    frame = encode_request_frame(OP_INSERT_BATCH, [b"abcdefgh"], "c")

    async def run():
        with pytest.raises(ProtocolError, match="truncated frame"):
            await read_frame(_reader_with(frame[: len(frame) - 3]))

    asyncio.run(run())


def test_declared_length_beyond_max_frame_rejected_before_read():
    async def run():
        huge = (MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="exceeds MAX_FRAME"):
            await read_frame(_reader_with(huge + b"x"))

    asyncio.run(run())


def test_clean_eof_between_frames_is_none():
    async def run():
        assert await read_frame(_reader_with(b"")) is None

    asyncio.run(run())


# ----------------------------------------------------------------------
# v2 envelopes: correlation ids on the wire
# ----------------------------------------------------------------------

def test_v2_request_round_trip_and_v1_parity():
    v1 = encode_request_frame(OP_QUERY_BATCH, ["a", b"b"], "c")
    v2 = encode_request_frame(OP_QUERY_BATCH, ["a", b"b"], "c", request_id=7)
    # The v2 frame is the v1 frame plus a five-byte envelope: same body.
    assert v2[9:] == v1[4:]
    assert v2[4] == FRAME_V2
    rid, request = decode_request_envelope(memoryview(v2)[4:])
    assert rid == 7
    assert request.items == ["a", b"b"]
    # The envelope decoder passes v1 payloads through with a None id.
    rid, request = decode_request_envelope(v1[4:])
    assert rid is None and request.client == "c"


def test_v2_response_round_trip_all_shapes():
    for frame, check in [
        (encode_answers_frame([True, False], request_id=0xFFFFFFFF),
         lambda r: r.answers == [True, False]),
        (encode_error_frame(ST_RATE_LIMITED, "slow down", request_id=3),
         lambda r: r.message == "slow down"),
        (encode_stats_frame(_snapshots(), request_id=9),
         lambda r: r.stats[0]["shard_id"] == 0),
    ]:
        rid, response = decode_response_envelope(frame[4:])
        assert rid is not None and check(response)
    rid, response = decode_response_envelope(encode_answers_frame([True])[4:])
    assert rid is None and response.answers == [True]


def test_stats_frame_extra_entry_rides_without_shard_id():
    frame = encode_stats_frame(
        _snapshots(), extra={"server": {"connections": 2}}, request_id=1
    )
    _, response = decode_response_envelope(frame[4:])
    assert response.stats[-1] == {"server": {"connections": 2}}
    assert "shard_id" not in response.stats[-1]


def test_correlation_id_outside_u32_rejected():
    for bad in (-1, 1 << 32):
        with pytest.raises(ProtocolError, match="u32 range"):
            encode_request_frame(OP_QUERY, ["x"], "c", request_id=bad)


def test_truncated_v2_headers_rejected():
    full = encode_request_frame(OP_QUERY, ["x"], "c", request_id=42)[4:]
    # Cut inside the correlation id (marker + 0..3 id bytes).
    for keep in range(1, 5):
        with pytest.raises(ProtocolError, match="correlation id"):
            decode_request_envelope(full[:keep])
    reply = encode_answers_frame([True], request_id=42)[4:]
    for keep in range(1, 5):
        with pytest.raises(ProtocolError, match="correlation id"):
            decode_response_envelope(reply[:keep])


def test_envelope_with_empty_body_rejected():
    # A well-formed envelope whose body is missing entirely.
    with pytest.raises(ProtocolError, match="opcode"):
        decode_request_envelope(bytes([FRAME_V2]) + (5).to_bytes(4, "big"))
    with pytest.raises(ProtocolError, match="status"):
        decode_response_envelope(bytes([FRAME_V2]) + (5).to_bytes(4, "big"))


def test_v1_decoders_reject_v2_frames_as_unknown():
    v2_request = encode_request_frame(OP_QUERY, ["x"], "c", request_id=1)[4:]
    with pytest.raises(ProtocolError, match="unknown opcode"):
        decode_request(v2_request)
    v2_reply = encode_answers_frame([True], request_id=1)[4:]
    with pytest.raises(ProtocolError, match="unknown status"):
        decode_response(v2_reply)


def test_trailing_garbage_after_v2_payload_rejected():
    frame = encode_request_frame(OP_QUERY, ["x"], "c", request_id=5)
    with pytest.raises(ProtocolError, match="trailing"):
        decode_request_envelope(frame[4:] + b"\x00")


# ----------------------------------------------------------------------
# Cluster frames: handoff requests and not-owner redirects
# ----------------------------------------------------------------------

_BLOCK = b"RGSB-test-shard-block-bytes"
# v2 handoff payload layout with client "anon": envelope(5) + op(1) +
# client_len(2) + "anon"(4) + shard(4) = 16, then epoch(8), block_len(4).
_EPOCH_AT = 16
_BLOCK_LEN_AT = _EPOCH_AT + 8


def test_handoff_frame_round_trip_both_generations():
    frame = encode_handoff_frame(7, 3, _BLOCK, client="mover", request_id=11)
    rid, request = decode_request_envelope(frame[4:])
    assert rid == 11 and request.op == OP_HANDOFF
    assert (request.shard_id, request.epoch) == (7, 3)
    assert request.block == _BLOCK and request.items == []
    assert request.client == "mover"
    # Without a correlation id the encoder emits a bare v1 payload that
    # the legacy decoder accepts.
    bare = encode_handoff_frame(7, 3, _BLOCK)[4:]
    assert decode_request(bare).block == _BLOCK
    # Bytes-likes are accepted and normalised.
    assert encode_handoff_frame(7, 3, bytearray(_BLOCK)) == encode_frame(bare)


def test_handoff_frame_rejects_bad_fields_at_encode_time():
    with pytest.raises(ProtocolError, match="u32 range"):
        encode_handoff_frame(1 << 32, 1, _BLOCK)
    for epoch in (0, -1, 1 << 64):
        with pytest.raises(ProtocolError, match="positive u64"):
            encode_handoff_frame(0, epoch, _BLOCK)
    with pytest.raises(ProtocolError, match="empty shard block"):
        encode_handoff_frame(0, 1, b"")
    with pytest.raises(ProtocolError, match="must be bytes"):
        encode_handoff_frame(0, 1, "not-bytes")


def test_handoff_truncated_epoch_rejected():
    payload = encode_handoff_frame(2, 9, _BLOCK, request_id=1)[4:]
    for cut in range(_EPOCH_AT, _EPOCH_AT + 8):
        with pytest.raises(ProtocolError, match="handoff epoch"):
            decode_request_envelope(payload[:cut])


def test_handoff_zero_epoch_on_the_wire_rejected():
    # The encoder refuses epoch 0, so a replayed "no view" sentinel can
    # only arrive hand-crafted -- patch the epoch field to zeros.
    payload = bytearray(encode_handoff_frame(2, 9, _BLOCK, request_id=1)[4:])
    payload[_EPOCH_AT : _EPOCH_AT + 8] = bytes(8)
    with pytest.raises(ProtocolError, match="epoch must be positive"):
        decode_request_envelope(bytes(payload))


def test_handoff_block_length_overrun_rejected_before_allocation():
    payload = bytearray(encode_handoff_frame(2, 9, _BLOCK, request_id=1)[4:])
    payload[_BLOCK_LEN_AT : _BLOCK_LEN_AT + 4] = (0xFFFFFF).to_bytes(4, "big")
    with pytest.raises(ProtocolError, match="ends inside handoff shard block"):
        decode_request_envelope(bytes(payload))


def test_handoff_empty_block_on_the_wire_rejected():
    payload = bytearray(encode_handoff_frame(2, 9, _BLOCK, request_id=1)[4:])
    trimmed = payload[: _BLOCK_LEN_AT] + bytes(4)
    with pytest.raises(ProtocolError, match="empty shard block"):
        decode_request_envelope(bytes(trimmed))


def test_handoff_trailing_garbage_rejected():
    payload = encode_handoff_frame(2, 9, _BLOCK, request_id=1)[4:]
    with pytest.raises(ProtocolError, match="trailing"):
        decode_request_envelope(payload + b"\x00")


def test_not_owner_frame_round_trip_and_payload_parity():
    frame = encode_not_owner_frame(3, 5, "beta", request_id=2)
    rid, response = decode_response_envelope(frame[4:])
    assert rid == 2 and response.status == ST_NOT_OWNER
    assert response.redirect == Redirect(shard_id=3, epoch=5, owner="beta")
    assert response.answers is None and response.message is None
    # The v2 frame's body matches the payload encoder byte for byte,
    # and the v1 frame is exactly the framed payload.
    assert frame[9:] == encode_not_owner(3, 5, "beta")
    assert encode_not_owner_frame(3, 5, "beta") == encode_frame(
        encode_not_owner(3, 5, "beta")
    )
    # Epoch 0 with no owner is the legal "no ownership view" sentinel.
    _, bare = decode_response_envelope(encode_not_owner_frame(3, 0)[4:])
    assert bare.redirect == Redirect(shard_id=3, epoch=0, owner="")


def test_not_owner_truncated_owner_rejected():
    payload = encode_not_owner_frame(3, 5, "beta", request_id=2)[4:]
    with pytest.raises(ProtocolError, match="redirect owner"):
        decode_response_envelope(payload[:-2])
    # envelope(5) + status(1) + shard(4) puts the epoch at offset 10.
    with pytest.raises(ProtocolError, match="redirect epoch"):
        decode_response_envelope(payload[:14])


def test_error_encoders_reject_not_owner_status():
    # ST_NOT_OWNER carries a structured redirect, not a message: the
    # diagnostic encoders must refuse it rather than emit an ambiguous
    # body.
    with pytest.raises(ProtocolError, match="bad error status"):
        encode_error(ST_NOT_OWNER, "wrong shape")
    with pytest.raises(ProtocolError, match="bad error status"):
        encode_error_frame(ST_NOT_OWNER, "wrong shape", request_id=1)
