"""Admission control: token buckets, per-client limiting, saturation guard."""

from __future__ import annotations

import pytest

from repro.core.bitvector import BitVector
from repro.core.bloom import BloomFilter
from repro.exceptions import ParameterError
from repro.service.admission import (
    ClientRateLimiter,
    RateLimited,
    SaturationGuard,
    TokenBucket,
)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_token_bucket_burst_then_refill():
    bucket = TokenBucket(rate=10.0, burst=5, now=0.0)
    assert bucket.try_acquire(5, now=0.0) is True  # full burst
    assert bucket.try_acquire(1, now=0.0) is False  # empty
    assert bucket.try_acquire(1, now=0.1) is True  # 0.1s * 10/s = 1 token
    assert bucket.try_acquire(5, now=10.0) is True  # refill caps at burst
    assert bucket.try_acquire(1, now=10.0) is False


def test_token_bucket_validation():
    with pytest.raises(ParameterError):
        TokenBucket(rate=0, burst=5, now=0.0)
    with pytest.raises(ParameterError):
        TokenBucket(rate=1, burst=0, now=0.0)


def test_limiter_is_per_client():
    clock = FakeClock()
    limiter = ClientRateLimiter(rate=10.0, burst=4, clock=clock)
    assert limiter.admit("alice", 4) is True
    assert limiter.admit("alice", 1) is False  # alice exhausted
    assert limiter.admit("bob", 4) is True  # bob unaffected
    assert limiter.denied == 1
    clock.advance(0.5)  # 5 tokens back
    assert limiter.admit("alice", 4) is True


def test_limiter_bucket_table_is_bounded():
    clock = FakeClock()
    limiter = ClientRateLimiter(rate=10.0, burst=4, clock=clock, max_clients=3)
    for i in range(10):  # attacker minting fresh client ids
        assert limiter.admit(f"sybil-{i}", 1) is True
    assert len(limiter._buckets) == 3  # oldest evicted, table capped
    with pytest.raises(ParameterError):
        ClientRateLimiter(rate=1.0, max_clients=0)


def test_limiter_unlimited_mode():
    limiter = ClientRateLimiter(rate=None)
    assert all(limiter.admit("anyone", 10_000) for _ in range(100))
    assert limiter.denied == 0


def test_rate_limited_exception_carries_client():
    err = RateLimited("mallory")
    assert err.client == "mallory"
    assert "mallory" in str(err)


def test_saturation_guard_on_bloom_filter():
    guard = SaturationGuard(threshold=0.5)
    target = BloomFilter(64, 2)
    assert guard.should_rotate(target) is False
    target.bits.set_indexes(range(32))
    target._weight = 32
    assert guard.should_rotate(target) is True  # exactly at threshold


def test_saturation_guard_handles_method_and_missing_fill():
    guard = SaturationGuard(threshold=0.25)
    vec = BitVector(16)  # fill_ratio is a method here
    assert guard.should_rotate(vec) is False
    vec.set_indexes(range(4))
    assert guard.should_rotate(vec) is True
    assert guard.should_rotate(object()) is False  # no fill_ratio: never rotate


def test_saturation_guard_validation():
    for bad in (0.0, -0.5, 1.5):
        with pytest.raises(ParameterError):
            SaturationGuard(bad)
