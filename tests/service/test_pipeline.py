"""Pipelined serving: correlation ids end to end, hostile peers, stats."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.core.bloom import BloomFilter
from repro.exceptions import ProtocolError
from repro.service.backends import LocalBackend
from repro.service.client import MembershipClient
from repro.service.codec import (
    FRAME_V2,
    OP_QUERY,
    OP_QUERY_BATCH,
    ST_OK,
    ST_PROTOCOL,
    decode_request_envelope,
    decode_response_envelope,
    encode_answers_frame,
    encode_request_frame,
    read_frame,
)
from repro.service.gateway import MembershipGateway
from repro.service.server import MembershipServer
from repro.urlgen.faker import UrlFactory

URLS = UrlFactory(seed=0x91BE).urls(200)

SLOW = "http://slow.example/"


class SlowBackend(LocalBackend):
    """Local backend that stalls any batch containing the SLOW item."""

    async def query_batch(self, shard_id, items):
        if SLOW in items:
            await asyncio.sleep(0.15)
        return await super().query_batch(shard_id, items)


def make_gateway(backend_cls=LocalBackend, shards: int = 4) -> MembershipGateway:
    return MembershipGateway(
        backend=backend_cls(lambda: BloomFilter(2048, 4), shards)
    )


def serve(coro_factory, *, pipeline_depth=32, pipeline=8, backend_cls=LocalBackend):
    """Run ``coro_factory(gateway, server, client)`` against a live stack."""

    async def scenario():
        gateway = make_gateway(backend_cls)
        async with MembershipServer(gateway, pipeline_depth=pipeline_depth) as server:
            client = MembershipClient(*server.address, pipeline=pipeline)
            try:
                return await coro_factory(gateway, server, client)
            finally:
                await client.aclose()

    return asyncio.run(scenario())


def raw_serve(coro_factory, *, pipeline_depth=32, backend_cls=LocalBackend):
    """Run ``coro_factory(gateway, server, reader, writer)`` on a raw socket."""

    async def scenario():
        gateway = make_gateway(backend_cls)
        async with MembershipServer(gateway, pipeline_depth=pipeline_depth) as server:
            reader, writer = await asyncio.open_connection(*server.address)
            try:
                return await coro_factory(gateway, server, reader, writer)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    return asyncio.run(scenario())


# ----------------------------------------------------------------------
# Happy path: pipelined answers match the gateway's
# ----------------------------------------------------------------------


def test_pipelined_round_trip_matches_gateway():
    async def scenario(gateway, server, client):
        await client.insert_batch(URLS[:50], client="seed")
        answers = await asyncio.gather(
            *(client.query_batch(URLS[i : i + 5]) for i in range(0, 80, 5))
        )
        direct = await gateway.query_batch(URLS[:80])
        return [a for chunk in answers for a in chunk], direct

    wire, direct = serve(scenario)
    assert wire == direct
    assert wire[:50] == [True] * 50


def test_pipelined_client_against_serial_server():
    """pipeline_depth=0 still echoes correlation ids, just serially."""

    async def scenario(gateway, server, client):
        await client.insert_batch(URLS[:20], client="seed")
        return await asyncio.gather(
            *(client.query(url) for url in URLS[:30])
        )

    answers = serve(scenario, pipeline_depth=0, pipeline=4)
    assert answers[:20] == [True] * 20


def test_out_of_order_replies_reach_the_right_callers():
    order: list[str] = []

    async def scenario(gateway, server, client):
        # Keep the fast request off the stalled item's shard, so the
        # only thing that could delay it is the connection itself.
        blocked = gateway.shard_of(SLOW)
        fast_items = [u for u in URLS if gateway.shard_of(u) != blocked][:10]
        await client.insert_batch(fast_items, client="seed")

        async def slow():
            result = await client.query(SLOW)
            order.append("slow")
            return result

        async def fast():
            result = await client.query_batch(fast_items)
            order.append("fast")
            return result

        slow_task = asyncio.ensure_future(slow())
        await asyncio.sleep(0.01)  # the slow query is on the wire first
        fast_answers = await fast()
        slow_answer = await slow_task
        return fast_answers, slow_answer

    fast_answers, slow_answer = serve(scenario, backend_cls=SlowBackend)
    # The later request overtook the stalled one on the same socket, and
    # each reply still landed with its own caller.
    assert order == ["fast", "slow"]
    assert fast_answers == [True] * 10
    assert slow_answer is False


# ----------------------------------------------------------------------
# Hostile peers
# ----------------------------------------------------------------------


def test_duplicate_inflight_correlation_id_forfeits_the_connection():
    async def scenario(gateway, server, reader, writer):
        # Two requests under the same id while the first is stalled.
        writer.write(encode_request_frame(OP_QUERY, [SLOW], request_id=5))
        writer.write(encode_request_frame(OP_QUERY, [URLS[0]], request_id=5))
        await writer.drain()
        raw = await asyncio.wait_for(read_frame(reader), timeout=5.0)
        rid, response = decode_response_envelope(raw)
        eof = await asyncio.wait_for(read_frame(reader), timeout=5.0)
        return server.protocol_errors, rid, response, eof

    errors, rid, response, eof = raw_serve(scenario, backend_cls=SlowBackend)
    assert errors == 1
    assert rid == 5
    assert response.status == ST_PROTOCOL
    assert "already in flight" in (response.message or "")
    assert eof is None  # the server hung up after the violation


def test_v1_and_v2_interleave_on_one_connection():
    async def scenario(gateway, server, reader, writer):
        await gateway.insert_batch(URLS[:10], client="seed")
        writer.write(encode_request_frame(OP_QUERY_BATCH, URLS[:4], request_id=9))
        writer.write(encode_request_frame(OP_QUERY_BATCH, URLS[4:8]))  # v1
        writer.write(encode_request_frame(OP_QUERY_BATCH, URLS[8:10], request_id=10))
        await writer.drain()
        replies = {}
        for _ in range(3):
            raw = await asyncio.wait_for(read_frame(reader), timeout=5.0)
            rid, response = decode_response_envelope(raw)
            replies[rid] = response
        return replies

    replies = raw_serve(scenario)
    # One bare v1 reply, two id-tagged v2 replies, all answered.
    assert set(replies) == {None, 9, 10}
    assert replies[None].answers == [True] * 4
    assert replies[9].answers == [True] * 4
    assert replies[10].answers == [True] * 2
    assert all(r.status == ST_OK for r in replies.values())


def test_truncated_v2_header_is_a_protocol_error():
    async def scenario(gateway, server, reader, writer):
        torn = bytes([FRAME_V2]) + b"\x00\x01"  # marker + half an id
        writer.write(struct.pack(">I", len(torn)) + torn)
        await writer.drain()
        raw = await asyncio.wait_for(read_frame(reader), timeout=5.0)
        rid, response = decode_response_envelope(raw)
        eof = await asyncio.wait_for(read_frame(reader), timeout=5.0)
        return server.protocol_errors, response, eof

    errors, response, eof = raw_serve(scenario)
    assert errors == 1
    assert response.status == ST_PROTOCOL
    assert eof is None


def test_client_fails_fast_on_unknown_correlation_id_then_recovers():
    connections = 0

    async def fake_server(reader, writer):
        nonlocal connections
        connections += 1
        misbehave = connections == 1
        try:
            while True:
                raw = await read_frame(reader)
                if raw is None:
                    return
                rid, request = decode_request_envelope(raw)
                reply_id = 999 if misbehave else rid
                writer.write(
                    encode_answers_frame(
                        [False] * len(request.items), request_id=reply_id
                    )
                )
                await writer.drain()
        except (ConnectionError, ProtocolError):
            pass
        finally:
            writer.close()

    async def scenario():
        server = await asyncio.start_server(fake_server, "127.0.0.1", 0)
        host, port = server.sockets[0].getsockname()[:2]
        client = MembershipClient(host, port, pipeline=4)
        try:
            with pytest.raises(ProtocolError, match="unknown correlation id"):
                await client.query(URLS[0])
            # The poisoned channel is dead; the next request transparently
            # opens a fresh one and succeeds.
            return await client.query(URLS[0])
        finally:
            await client.aclose()
            server.close()
            await server.wait_closed()

    assert asyncio.run(scenario()) is False
    assert connections == 2


# ----------------------------------------------------------------------
# Stats: race-free snapshots and server counters on the wire
# ----------------------------------------------------------------------


def test_snapshot_async_waits_for_the_shard_lock():
    gateway = make_gateway()

    async def scenario():
        async with gateway._locks[0]:
            probe = asyncio.ensure_future(gateway.snapshot_async())
            await asyncio.sleep(0.05)
            # Shard 0 is mid-"batch": the snapshot must not have torn in.
            assert not probe.done()
        return await probe

    snapshots = asyncio.run(scenario())
    assert len(snapshots) == gateway.shards


def test_server_stats_surface_over_tcp():
    async def scenario(gateway, server, client):
        gateway.configure_coalescing(window_us=0, max_batch=16)
        await client.insert_batch(URLS[:10])
        shard_stats = await client.stats()
        server_stats = await client.server_stats()
        return shard_stats, server_stats

    shard_stats, server_stats = serve(scenario)
    assert all("shard_id" in entry for entry in shard_stats)
    assert server_stats["connections"] == 1
    assert server_stats["protocol_errors"] == 0
    assert server_stats["pipeline_depth"] == 32
    assert server_stats["coalesce"]["enabled"] is True


def test_stats_stay_consistent_under_concurrent_traffic():
    async def scenario(gateway, server, client):
        stop = asyncio.Event()

        async def hammer(idx: int):
            r = 0
            while not stop.is_set():
                await client.insert_batch(
                    [URLS[(idx * 31 + r + i) % len(URLS)] for i in range(4)]
                )
                r += 1

        hammers = [asyncio.ensure_future(hammer(i)) for i in range(4)]
        probes = [await client.stats() for _ in range(10)]
        stop.set()
        await asyncio.gather(*hammers)
        final = await client.stats()
        return probes, final

    probes, final = serve(scenario)
    for snapshot in probes:
        assert len(snapshot) == 4
        for entry in snapshot:
            assert entry["inserts"] >= 0
    # Totals only ever grow; the final probe sees everything settled.
    assert sum(e["inserts"] for e in final) >= sum(
        e["inserts"] for e in probes[-1]
    )
