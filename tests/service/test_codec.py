"""The wire codec: round trips and hostile-input robustness.

The codec faces untrusted bytes by definition (the paper's adversary
*is* the client), so every malformed shape must raise a clean
:class:`ProtocolError` -- truncated frames, oversized lengths, garbage
payloads, bad opcodes -- and never an IndexError, MemoryError or silent
misparse.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.exceptions import ProtocolError
from repro.service.codec import (
    MAX_FRAME,
    OP_INSERT,
    OP_INSERT_BATCH,
    OP_QUERY,
    OP_QUERY_BATCH,
    OP_STATS,
    ST_ERROR,
    ST_INVALID,
    ST_OK,
    ST_RATE_LIMITED,
    decode_request,
    decode_response,
    encode_answers,
    encode_error,
    encode_frame,
    encode_request,
    encode_stats,
    pack_bools,
    read_frame,
    unpack_bools,
)
from repro.service.telemetry import ShardTelemetry


def read_frames(data: bytes, count: int = 1) -> list[bytes | None]:
    """Feed ``data`` + EOF into a fresh StreamReader (inside the loop,
    so the reader binds to it) and read ``count`` frames."""

    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return [await read_frame(reader) for _ in range(count)]

    return asyncio.run(scenario())


def read_one(data: bytes) -> bytes | None:
    return read_frames(data)[0]


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------

@pytest.mark.parametrize("op", [OP_INSERT_BATCH, OP_QUERY_BATCH])
def test_batch_request_round_trip(op):
    items: list[str | bytes] = ["http://a.example", b"\x00raw\xff", "unicode-é中"]
    payload = encode_request(op, items, client="mallory")
    request = decode_request(payload)
    assert request.op == op
    assert request.client == "mallory"
    assert request.items == items  # str stays str, bytes stays bytes


@pytest.mark.parametrize("op", [OP_INSERT, OP_QUERY])
def test_single_request_round_trip(op):
    request = decode_request(encode_request(op, ["one"], client=""))
    assert request.items == ["one"]
    assert request.client == ""


def test_stats_request_round_trip():
    request = decode_request(encode_request(OP_STATS))
    assert request.op == OP_STATS
    assert request.items == []


def test_empty_batch_round_trip():
    request = decode_request(encode_request(OP_QUERY_BATCH, []))
    assert request.items == []


def test_answers_round_trip():
    answers = [True, False, True, True, False, False, True, False, True]
    response = decode_response(encode_answers(answers))
    assert response.status == ST_OK
    assert response.answers == answers
    assert decode_response(encode_answers([])).answers == []


@pytest.mark.parametrize("status", [ST_RATE_LIMITED, ST_INVALID, ST_ERROR])
def test_error_round_trip(status):
    response = decode_response(encode_error(status, "client 'x' exceeded"))
    assert response.status == status
    assert response.message == "client 'x' exceeded"


def test_stats_round_trip():
    telemetry = ShardTelemetry(3)
    telemetry.inserts = 42
    telemetry.query_latency.record(0.001)
    snapshot = telemetry.snapshot(weight=17, fill_ratio=0.25)
    response = decode_response(encode_stats([snapshot]))
    assert response.status == ST_OK
    assert response.stats == [
        {
            "shard_id": 3,
            "inserts": 42,
            "queries": 0,
            "positives": 0,
            "rotations": 0,
            "weight": 17,
            "fill_ratio": 0.25,
            "query_p50_us": snapshot.query_p50_us,
            "query_p99_us": snapshot.query_p99_us,
            "recent_positive_rate": 0.0,
            "rotations_suppressed": 0,
        }
    ]


def test_pack_bools_round_trip():
    for count in (0, 1, 7, 8, 9, 64, 100):
        values = [(i * 7) % 3 == 0 for i in range(count)]
        assert unpack_bools(pack_bools(values), count) == values
    with pytest.raises(ProtocolError):
        unpack_bools(b"\x01", 9)  # bitmap too short for the count


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def test_read_frame_round_trip_and_clean_eof():
    payload = encode_request(OP_QUERY_BATCH, ["x", "y"])
    frames = read_frames(encode_frame(payload) * 2, count=3)
    assert frames == [payload, payload, None]  # None = clean EOF at boundary


def test_truncated_header_raises():
    with pytest.raises(ProtocolError, match="mid-header"):
        read_one(b"\x00\x00")


def test_truncated_payload_raises():
    frame = encode_frame(b"payload-bytes")
    with pytest.raises(ProtocolError, match="truncated frame"):
        read_one(frame[:-4])


def test_zero_length_frame_raises():
    with pytest.raises(ProtocolError, match="zero-length"):
        read_one(b"\x00\x00\x00\x00")


def test_oversized_length_raises_before_allocating():
    # A hostile 4 GiB length must be rejected from the 4 header bytes
    # alone -- no attempt to read (or allocate) the body.
    with pytest.raises(ProtocolError, match="exceeds MAX_FRAME"):
        read_one(b"\xff\xff\xff\xff")


def test_encode_frame_bounds():
    with pytest.raises(ProtocolError):
        encode_frame(b"")
    with pytest.raises(ProtocolError):
        encode_frame(b"x" * (MAX_FRAME + 1))


# ----------------------------------------------------------------------
# Hostile payloads
# ----------------------------------------------------------------------

def test_garbage_payload_raises():
    with pytest.raises(ProtocolError):
        decode_request(b"\xde\xad\xbe\xef" * 8)
    with pytest.raises(ProtocolError):
        decode_response(b"\xde\xad\xbe\xef" * 8)


def test_unknown_opcode_and_status():
    with pytest.raises(ProtocolError, match="unknown opcode"):
        decode_request(bytes([99]) + b"\x00\x00" + b"\x00\x00\x00\x00")
    with pytest.raises(ProtocolError, match="unknown status"):
        decode_response(bytes([99]))


def test_item_count_larger_than_payload_rejected():
    # Claim 2^31 items in a tiny payload: must fail on the count check,
    # not loop allocating.
    payload = (
        bytes([OP_QUERY_BATCH]) + b"\x00\x00" + (0x80000000).to_bytes(4, "big")
    )
    with pytest.raises(ProtocolError, match="item count"):
        decode_request(payload)


def test_payload_ending_inside_item_rejected():
    good = encode_request(OP_QUERY_BATCH, ["abcdefgh"])
    with pytest.raises(ProtocolError, match="ends inside"):
        decode_request(good[:-3])


def test_trailing_bytes_rejected():
    good = encode_request(OP_QUERY_BATCH, ["abc"])
    with pytest.raises(ProtocolError, match="trailing"):
        decode_request(good + b"\x00")
    with pytest.raises(ProtocolError, match="trailing"):
        decode_response(encode_answers([True]) + b"junk")


def test_bad_item_flag_rejected():
    good = bytearray(encode_request(OP_QUERY_BATCH, ["abc"]))
    # The item flag byte sits after op + client length/bytes + count.
    flag_offset = 1 + 2 + len(b"anon") + 4
    good[flag_offset] = 7
    with pytest.raises(ProtocolError, match="item flag"):
        decode_request(bytes(good))


def test_non_utf8_text_item_rejected():
    raw = bytearray(encode_request(OP_QUERY_BATCH, ["ab"]))
    raw[-1] = 0xFF  # corrupt the text item's bytes
    raw[-2] = 0xFE
    with pytest.raises(ProtocolError, match="not valid UTF-8"):
        decode_request(bytes(raw))


def test_single_op_item_count_enforced():
    with pytest.raises(ProtocolError):
        encode_request(OP_INSERT, ["a", "b"])
    # Hand-build a single-op payload carrying two items.
    batch = encode_request(OP_INSERT_BATCH, ["a", "b"])
    forged = bytes([OP_INSERT]) + batch[1:]
    with pytest.raises(ProtocolError, match="exactly one item"):
        decode_request(forged)


def test_stats_with_items_rejected():
    batch = encode_request(OP_QUERY_BATCH, ["a"])
    forged = bytes([OP_STATS]) + batch[1:]
    with pytest.raises(ProtocolError, match="no items"):
        decode_request(forged)


def test_stats_response_garbage_json_rejected():
    forged = bytes([ST_OK, 0xFF]) + (4).to_bytes(4, "big") + b"nope"
    with pytest.raises(ProtocolError, match="JSON"):
        decode_response(forged)
