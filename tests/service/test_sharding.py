"""Shard routers: determinism, range, uniformity, and keying."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.service.sharding import HashShardPicker, KeyedShardPicker
from repro.urlgen.faker import UrlFactory

URLS = UrlFactory(seed=0x5EED).urls(400)


@pytest.mark.parametrize("picker", [HashShardPicker(), KeyedShardPicker(bytes(16))])
def test_pick_is_deterministic_and_in_range(picker):
    for url in URLS[:50]:
        first = picker.pick(url, 8)
        assert 0 <= first < 8
        assert picker.pick(url, 8) == first
        # str and bytes spellings route identically.
        assert picker.pick(url.encode(), 8) == first


@pytest.mark.parametrize("picker", [HashShardPicker(), KeyedShardPicker(bytes(16))])
def test_distribution_is_roughly_uniform(picker):
    shards = 4
    counts = [0] * shards
    for url in URLS:
        counts[picker.pick(url, shards)] += 1
    expected = len(URLS) / shards
    for count in counts:
        assert 0.5 * expected < count < 1.5 * expected


def test_hash_picker_is_public_and_seeded():
    a, b = HashShardPicker(seed=1), HashShardPicker(seed=1)
    other = HashShardPicker(seed=2)
    routes_a = [a.pick(url, 8) for url in URLS[:100]]
    assert routes_a == [b.pick(url, 8) for url in URLS[:100]]
    assert routes_a != [other.pick(url, 8) for url in URLS[:100]]


def test_keyed_picker_depends_on_secret_key():
    a = KeyedShardPicker(bytes(16))
    b = KeyedShardPicker(bytes([1]) * 16)
    routes = [(a.pick(url, 8), b.pick(url, 8)) for url in URLS[:100]]
    assert any(x != y for x, y in routes)
    # Fresh keys are generated (and kept) when none is supplied.
    auto = KeyedShardPicker()
    assert len(auto.key) == 16
    assert KeyedShardPicker(auto.key).pick(URLS[0], 8) == auto.pick(URLS[0], 8)


def test_invalid_parameters():
    with pytest.raises(ParameterError):
        KeyedShardPicker(b"short")
    with pytest.raises(ParameterError):
        HashShardPicker().pick("x", 0)
    with pytest.raises(ParameterError):
        KeyedShardPicker(bytes(16)).pick("x", -1)
