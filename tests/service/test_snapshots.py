"""Warm-restart snapshots: bits, rotation log and telemetry survive."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.bloom import BloomFilter
from repro.exceptions import SnapshotError
from repro.service.admission import SaturationGuard
from repro.service.backends import ProcessPoolBackend
from repro.service.driver import AdversarialTrafficDriver
from repro.service.gateway import MembershipGateway
from repro.service.sharding import HashShardPicker
from repro.service.snapshots import (
    load_snapshot,
    parse_gateway_snapshot,
    restore_gateway,
    save_snapshot,
    snapshot_gateway,
)
from repro.urlgen.faker import UrlFactory

URLS = UrlFactory(seed=0x57AB).urls(300)
PROBES = UrlFactory(seed=0x9E0B).urls(300)


def make_gateway(m: int = 512, **kwargs) -> MembershipGateway:
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("picker", HashShardPicker())
    return MembershipGateway(lambda: BloomFilter(m, 4), **kwargs)


def worked_gateway() -> MembershipGateway:
    """A gateway with real history: traffic, rotations, telemetry."""
    gateway = make_gateway(m=256, guard=SaturationGuard(0.35))
    driver = AdversarialTrafficDriver(gateway, seed=3, max_trials=100_000)
    asyncio.run(
        driver.run(
            honest_clients=2,
            honest_inserts=60,
            honest_queries=60,
            batch=8,
            pollution_inserts=60,
            ghost_queries=8,
            ghost_min_fill=0.1,
            probe_queries=60,
        )
    )
    return gateway


def test_round_trip_restores_bits_log_and_telemetry():
    gateway = worked_gateway()
    assert gateway.rotations >= 1  # history worth preserving
    raw = snapshot_gateway(gateway)

    restored = make_gateway(m=256, guard=SaturationGuard(0.35))
    restore_gateway(restored, raw)

    # Shard bits: byte-identical exports.
    for shard_id in range(gateway.shards):
        assert restored.backend.export_shard(shard_id) == gateway.backend.export_shard(
            shard_id
        )
    # Rotation log: identical events.
    assert restored.rotation_log == gateway.rotation_log
    # Telemetry: counters and histogram state identical.
    for a, b in zip(gateway.telemetry, restored.telemetry):
        assert a.to_state() == b.to_state()
    # And the reporting surface agrees.
    assert restored.render_stats() == gateway.render_stats()


def test_restored_gateway_answers_identically():
    gateway = worked_gateway()
    raw = snapshot_gateway(gateway)
    restored = make_gateway(m=256, guard=SaturationGuard(0.35))
    restore_gateway(restored, raw)
    before = asyncio.run(gateway.query_batch(PROBES))
    after = asyncio.run(restored.query_batch(PROBES))
    assert before == after


def test_snapshot_file_round_trip(tmp_path):
    gateway = worked_gateway()
    path = save_snapshot(gateway, tmp_path / "gateway.snap")
    assert path.exists()
    assert not (tmp_path / "gateway.snap.tmp").exists()  # tmp file renamed
    restored = make_gateway(m=256, guard=SaturationGuard(0.35))
    load_snapshot(restored, path)
    assert asyncio.run(restored.query_batch(PROBES)) == asyncio.run(
        gateway.query_batch(PROBES)
    )


def test_export_snapshot_method_round_trip():
    gateway = make_gateway()
    asyncio.run(gateway.insert_batch(URLS[:100]))
    restored = make_gateway()
    restored.restore_snapshot(gateway.export_snapshot())
    assert asyncio.run(restored.query_batch(URLS[:120])) == asyncio.run(
        gateway.query_batch(URLS[:120])
    )


def test_round_trip_through_process_backend():
    """A local gateway's snapshot restores into a process-pool one (and
    back): persistence is backend-agnostic."""

    def factory() -> BloomFilter:
        return BloomFilter(512, 4)

    local = MembershipGateway(factory, shards=2, picker=HashShardPicker())
    asyncio.run(local.insert_batch(URLS[:80]))
    raw = snapshot_gateway(local)

    with MembershipGateway(
        factory, backend=ProcessPoolBackend(factory, 2), picker=HashShardPicker()
    ) as pool:
        restore_gateway(pool, raw)
        # Snapshot again before serving (queries would bump telemetry).
        round_tripped = snapshot_gateway(pool)
        assert asyncio.run(pool.query_batch(URLS[:100])) == asyncio.run(
            local.query_batch(URLS[:100])
        )
    before, after = parse_gateway_snapshot(raw), parse_gateway_snapshot(round_tripped)
    # Bits, telemetry, log and epoch round-trip exactly ...
    assert after.filter_blocks == before.filter_blocks
    assert after.rotation_log == before.rotation_log
    assert after.op_epoch == before.op_epoch
    assert [t.to_state() for t in after.telemetry] == [
        t.to_state() for t in before.telemetry
    ]
    # ... and the one deliberate difference is lifecycle: shards that
    # lived through the restore are now flagged restored (mid-life).
    for was, now in zip(before.lifecycle, after.lifecycle):
        assert now == {**was, "restored": True, "restore_epoch": before.op_epoch}
    # A restored gateway's snapshot is a fixed point: restoring *it*
    # reproduces itself byte for byte.
    again = MembershipGateway(factory, shards=2, picker=HashShardPicker())
    restore_gateway(again, round_tripped)
    assert snapshot_gateway(again) == round_tripped


def test_parse_rejects_corruption():
    gateway = worked_gateway()
    raw = snapshot_gateway(gateway)

    with pytest.raises(SnapshotError, match="magic"):
        parse_gateway_snapshot(b"XXXX" + raw[4:])
    with pytest.raises(SnapshotError, match="version"):
        parse_gateway_snapshot(raw[:4] + b"\xff\xff" + raw[6:])
    with pytest.raises(SnapshotError, match="ends inside"):
        parse_gateway_snapshot(raw[:-10])
    with pytest.raises(SnapshotError, match="trailing"):
        parse_gateway_snapshot(raw + b"\x00")


def test_restore_rejects_mismatched_config():
    gateway = worked_gateway()
    raw = snapshot_gateway(gateway)

    wrong_shards = make_gateway(m=256, shards=2)
    with pytest.raises(SnapshotError, match="shards"):
        restore_gateway(wrong_shards, raw)

    wrong_geometry = make_gateway(m=1024)
    before = wrong_geometry.backend.export_shard(0)
    with pytest.raises(SnapshotError, match="m="):
        restore_gateway(wrong_geometry, raw)
    # The failed restore touched nothing (all-or-nothing contract).
    assert wrong_geometry.backend.export_shard(0) == before
    assert wrong_geometry.rotation_log == []


def test_filter_snapshot_header_round_trip():
    filt = BloomFilter(777, 3)
    filt.add_batch(URLS[:50])
    raw = filt.snapshot_bytes()

    rebuilt = BloomFilter.from_snapshot(raw, strategy=filt.strategy)
    assert rebuilt.m == 777 and rebuilt.k == 3
    assert len(rebuilt) == 50
    assert rebuilt.hamming_weight == filt.hamming_weight
    assert rebuilt.to_bytes() == filt.to_bytes()

    in_place = BloomFilter(777, 3, strategy=filt.strategy)
    in_place.restore_snapshot(raw)
    assert all(url in in_place for url in URLS[:50])

    with pytest.raises(SnapshotError, match="geometry"):
        BloomFilter(778, 3).restore_snapshot(raw)
    with pytest.raises(SnapshotError, match="magic"):
        BloomFilter.from_snapshot(b"nope" + raw[4:])
    with pytest.raises(SnapshotError, match="truncated"):
        BloomFilter.from_snapshot(raw[:8])
    with pytest.raises(SnapshotError, match="payload"):
        BloomFilter.from_snapshot(raw[:-1])


# ----------------------------------------------------------------------
# Version-3 forward compatibility (pre-algebra snapshots)
# ----------------------------------------------------------------------


def serialize_v3(gateway: MembershipGateway) -> bytes:
    """A version-3 gateway snapshot of ``gateway``, exactly as PR 4
    wrote them: no composed-policy scratch section.  Reuses the live
    structs so the layouts cannot drift apart."""
    from repro.service import snapshots as s

    parts = [
        s._HEADER.pack(
            s.GATEWAY_MAGIC, 3, gateway.shards, len(gateway.rotation_log), gateway.op_epoch
        )
    ]
    for e in gateway.rotation_log:
        parts.append(
            s._ROTATION.pack(
                e.shard_id, e.retired_weight, e.retired_insertions, e.retired_fill, e.op_epoch
            )
        )
        parts.append(s._pack_str(e.policy))
        parts.append(s._pack_str(e.reason))
    for shard_id, telemetry in enumerate(gateway.telemetry):
        life = gateway.lifecycle[shard_id].to_state(
            gateway.backend.state(shard_id).age_ops
        )
        parts.append(
            s._LIFECYCLE.pack(
                life["age_ops"], life["inserts"], life["queries"],
                life["positives"], int(life["restored"]), life["restore_epoch"],
            )
        )
        parts.append(s._WINDOW_LEN.pack(len(life["window"])))
        for queries, positives in life["window"]:
            parts.append(s._WINDOW_ENTRY.pack(queries, positives))
        state = telemetry.to_state()
        parts.append(
            s._COUNTERS.pack(
                state["inserts"], state["queries"], state["positives"], state["rotations"]
            )
        )
        for key in ("insert_latency", "query_latency"):
            count, total, buckets = state[key]
            parts.append(s._HISTOGRAM.pack(count, total, *buckets))
        block = gateway.backend.export_shard(shard_id)
        parts.append(s._BLOCK_LEN.pack(len(block)))
        parts.append(block)
    return b"".join(parts)


def test_v3_snapshot_restores_under_a_composed_policy():
    """A pre-algebra (v3) snapshot restores into a gateway running a
    composed cool-down/hysteresis policy with the policy scratch
    zero-initialised -- old deployments upgrade warm."""
    from repro.service.lifecycle import parse_policy

    gateway = worked_gateway()
    v3 = serialize_v3(gateway)
    parsed = parse_gateway_snapshot(v3)
    assert all(life["suppressed"] == 0 for life in parsed.lifecycle)
    assert all(life["streaks"] == {} for life in parsed.lifecycle)

    composed = make_gateway(
        m=256,
        policy=parse_policy("cooldown:100000(hysteresis:2(adaptive:0.6:16))"),
    )
    restore_gateway(composed, v3)
    # Everything a v3 snapshot carries came back ...
    assert composed.op_epoch == gateway.op_epoch
    assert composed.rotation_log == gateway.rotation_log
    for shard_id in range(composed.shards):
        assert composed.backend.export_shard(shard_id) == gateway.backend.export_shard(shard_id)
    # ... and the composed policy's scratch starts zeroed, then counts.
    assert all(life.suppressed == 0 and life.streaks == {} for life in composed.lifecycle)
    asyncio.run(composed.insert_batch(URLS[:40]))
    for _ in range(4):  # all-positive re-queries: the tripwire's signature
        asyncio.run(composed.query_batch(URLS[:40]))
    assert sum(life.suppressed for life in composed.lifecycle) >= 1


def test_v4_snapshot_is_written_and_v3_reparse_matches():
    """The current writer stamps version 4; a v3 payload of the same
    gateway parses to the same lifecycle state modulo the scratch."""
    from repro.service.snapshots import GATEWAY_VERSION, _HEADER

    gateway = worked_gateway()
    v4 = snapshot_gateway(gateway)
    assert GATEWAY_VERSION == 4
    assert _HEADER.unpack(v4[: _HEADER.size])[1] == 4
    parsed_v4 = parse_gateway_snapshot(v4)
    parsed_v3 = parse_gateway_snapshot(serialize_v3(gateway))
    for a, b in zip(parsed_v4.lifecycle, parsed_v3.lifecycle):
        scrubbed = dict(a, suppressed=0, streaks={})
        assert scrubbed == b
    assert parsed_v4.filter_blocks == parsed_v3.filter_blocks

    with pytest.raises(SnapshotError, match="version"):
        parse_gateway_snapshot(
            _HEADER.pack(b"RGSN", 2, 0, 0, 0)  # v2 predates the window section
        )


def test_failed_restore_is_all_or_nothing(monkeypatch):
    """A restore that dies mid-loop must roll back, not half-apply."""
    gateway = worked_gateway()
    raw = snapshot_gateway(gateway)

    victim = make_gateway(m=256, guard=SaturationGuard(0.35))
    asyncio.run(victim.insert_batch(URLS[:40], client="pre-restore"))
    before = [victim.backend.export_shard(s) for s in range(victim.shards)]
    before_answers = asyncio.run(victim.query_batch(PROBES, client="probe"))

    real_restore = type(victim.backend).restore_shard
    calls = {"n": 0}

    def dying_restore(self, shard_id, payload):
        calls["n"] += 1
        # Fail the last shard exactly once: the rollback's own
        # restore_shard calls (n > shards) must go through.
        if calls["n"] == victim.shards:
            raise SnapshotError("injected restore failure")
        return real_restore(self, shard_id, payload)

    monkeypatch.setattr(type(victim.backend), "restore_shard", dying_restore)
    with pytest.raises(SnapshotError, match="injected"):
        restore_gateway(victim, raw)
    monkeypatch.undo()

    # Every shard -- including the ones that *were* applied before the
    # failure -- is byte-identical to its pre-restore state, and the
    # gateway still serves.
    after = [victim.backend.export_shard(s) for s in range(victim.shards)]
    assert after == before
    assert asyncio.run(victim.query_batch(PROBES, client="probe")) == before_answers
    asyncio.run(victim.insert("still-serving", client="probe"))
    assert asyncio.run(victim.query("still-serving", client="probe"))


def test_restore_refuses_subset_gateways():
    """Whole-gateway restore is for identity-mapped gateways only; a
    cluster member owning a subset moves state via shard blocks."""
    gateway = worked_gateway()
    raw = snapshot_gateway(gateway)
    member = make_gateway(m=256, shards=None, shard_ids=[1, 3], total_shards=4)
    with pytest.raises(SnapshotError, match="subset"):
        restore_gateway(member, raw)
