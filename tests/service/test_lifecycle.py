"""The shard-lifecycle layer: policies, parsing, gateway integration over
both backends, and policy-state snapshot/restore parity."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.bloom import BloomFilter
from repro.core.counting import CountingBloomFilter
from repro.exceptions import ParameterError
from repro.service.admission import SaturationGuard
from repro.service.backends import LocalBackend, ProcessPoolBackend, ShardState
from repro.service.config import ServiceConfig
from repro.service.gateway import MembershipGateway
from repro.service.lifecycle import (
    AdaptivePositiveRatePolicy,
    FillThresholdPolicy,
    NeverRotatePolicy,
    RotateOnRestorePolicy,
    RotationDecision,
    RotationPolicy,
    ShardLifecycleState,
    ShardObservation,
    TimeBasedRecyclingPolicy,
    parse_policy,
    policy_from_guard,
)
from repro.service.sharding import HashShardPicker
from repro.service.snapshots import restore_gateway, snapshot_gateway
from repro.urlgen.faker import UrlFactory

URLS = UrlFactory(seed=0x11FE).urls(400)


def observation(**overrides) -> ShardObservation:
    base = dict(
        shard_id=0,
        hamming_weight=100,
        fill_ratio=0.1,
        insertions=40,
        age_ops=40,
        inserts=40,
        queries=0,
        positives=0,
        restored=False,
        ops_since_restore=40,
        op_epoch=40,
    )
    base.update(overrides)
    return ShardObservation(**base)


# ----------------------------------------------------------------------
# Pure policy decisions
# ----------------------------------------------------------------------


def test_fill_threshold_policy_matches_the_guard():
    policy = FillThresholdPolicy(0.5)
    assert not policy.evaluate(observation(fill_ratio=0.49)).rotate
    decision = policy.evaluate(observation(fill_ratio=0.5))
    assert decision.rotate and decision.reason == "fill_ratio>=0.5"
    # Exactly the saturation guard's rule, expressed as a policy.
    guard = SaturationGuard(0.5)
    for fill in (0.0, 0.3, 0.499, 0.5, 0.8, 1.0):
        obs = observation(fill_ratio=fill)
        assert policy.evaluate(obs).rotate == guard.should_rotate(obs)


def test_time_based_policy_rotates_on_op_budget():
    policy = TimeBasedRecyclingPolicy(100)
    assert not policy.evaluate(observation(age_ops=99)).rotate
    decision = policy.evaluate(observation(age_ops=100, fill_ratio=0.01))
    assert decision.rotate and decision.reason == "age_ops>=100"


def test_adaptive_policy_needs_volume_and_rate():
    policy = AdaptivePositiveRatePolicy(0.8, min_queries=10)
    # High rate, too few samples: hold.
    assert not policy.evaluate(observation(queries=9, positives=9)).rotate
    # Enough samples, honest rate: hold.
    assert not policy.evaluate(observation(queries=100, positives=50)).rotate
    # The ghost-storm signature: rotate.
    decision = policy.evaluate(observation(queries=100, positives=85))
    assert decision.rotate and decision.reason == "positive_rate>=0.8"


def test_windowed_observation_math():
    obs = observation(recent=((16, 2), (16, 4), (16, 16)))
    # Newest batch only.
    assert obs.windowed_positive_rate(16) == (16, 16)
    # Two newest batches.
    assert obs.windowed_positive_rate(32) == (32, 20)
    # More than retained: everything there is.
    assert obs.windowed_positive_rate(100) == (48, 22)
    # Whole batches are never split (coverage may overshoot).
    assert obs.windowed_positive_rate(20) == (32, 20)
    assert observation().windowed_positive_rate(8) == (0, 0)
    with pytest.raises(ParameterError):
        obs.windowed_positive_rate(0)


def test_windowed_adaptive_policy_sees_the_spike_dilution_hides():
    # 500 queries since rotation at an honest 30% positive rate, then a
    # late ghost storm: the lifetime rate barely moves, the window sees
    # a wall of positives.
    spike = observation(
        queries=500,
        positives=150 + 32,
        recent=((16, 5), (16, 16), (16, 16)),
    )
    unwindowed = AdaptivePositiveRatePolicy(0.8, min_queries=24)
    assert not unwindowed.evaluate(spike).rotate  # diluted: 182/500 = 0.36
    windowed = AdaptivePositiveRatePolicy(0.8, min_queries=24, window=32)
    decision = windowed.evaluate(spike)
    assert decision.rotate
    assert decision.reason == "window_positive_rate>=0.8"
    # Too little window coverage yet: hold, whatever the rate.
    young = observation(queries=8, positives=8, recent=((8, 8),))
    assert not windowed.evaluate(young).rotate


def test_windowed_policy_validation_and_spec():
    policy = AdaptivePositiveRatePolicy(0.8, min_queries=24, window=64)
    assert policy.spec() == "adaptive:0.8:24:64"
    rebuilt = parse_policy(policy.spec())
    assert rebuilt.spec() == policy.spec()
    assert rebuilt.window == 64
    for bad in (
        lambda: AdaptivePositiveRatePolicy(0.8, window=0),
        lambda: AdaptivePositiveRatePolicy(0.8, min_queries=65, window=64),
        lambda: AdaptivePositiveRatePolicy(
            0.8, window=ShardLifecycleState.WINDOW_CAP + 1
        ),
    ):
        with pytest.raises(ParameterError):
            bad()


def test_needs_recent_flags_skip_the_window_copy():
    # Shipped non-windowed policies never pay the O(window) copy; the
    # windowed adaptive (and any wrapper delegating to it) opts in, and
    # custom policies default to the safe True.
    assert not FillThresholdPolicy(0.5).needs_recent
    assert not TimeBasedRecyclingPolicy(10).needs_recent
    assert not NeverRotatePolicy().needs_recent
    assert not AdaptivePositiveRatePolicy(0.8).needs_recent
    assert AdaptivePositiveRatePolicy(0.8, 16, window=32).needs_recent
    assert not RotateOnRestorePolicy(5, inner=FillThresholdPolicy(0.5)).needs_recent
    assert RotateOnRestorePolicy(
        5, inner=AdaptivePositiveRatePolicy(0.8, 16, window=32)
    ).needs_recent

    class CustomPolicy(RotationPolicy):
        def evaluate(self, observation):
            return RotationDecision(rotate=False, reason="keep")

    assert CustomPolicy().needs_recent
    # observe() honours the flag: no window materialisation when False.
    life = ShardLifecycleState(0)
    life.note_queries(10, 5)
    assert life.observe(ShardState(0, 0.0, 0), 0, include_recent=False).recent == ()
    assert life.observe(ShardState(0, 0.0, 0), 0).recent == ((10, 5),)


def test_lifecycle_window_tracks_evicts_and_resets():
    life = ShardLifecycleState(0)
    assert life.window_rate() == 0.0
    life.note_queries(10, 5)
    life.note_queries(10, 10)
    assert life.window_rate() == 15 / 20
    obs = life.observe(ShardState(0, 0.0, 0), op_epoch=20)
    assert obs.recent == ((10, 5), (10, 10))
    # Eviction: old batches fall off once the cap stays covered.
    cap = ShardLifecycleState.WINDOW_CAP
    for _ in range(cap // 10 + 5):
        life.note_queries(10, 0)
    retained = life.observe(ShardState(0, 0.0, 0), op_epoch=0).recent
    assert (10, 5) not in retained  # the oldest batches were evicted
    assert cap <= sum(q for q, _ in retained) < cap + 10
    life.reset()
    assert life.window_rate() == 0.0
    assert life.observe(ShardState(0, 0.0, 0), op_epoch=0).recent == ()


def test_rotate_on_restore_policy_wraps_an_inner():
    policy = RotateOnRestorePolicy(50, inner=FillThresholdPolicy(0.5))
    # Never restored: delegates to the fill rule.
    assert not policy.evaluate(observation(restored=False)).rotate
    assert policy.evaluate(observation(restored=False, fill_ratio=0.6)).rotate
    # Restored but young: inner still decides.
    young = observation(restored=True, ops_since_restore=10)
    assert not policy.evaluate(young).rotate
    # Restored and past the budget: expire, whatever the fill.
    old = observation(restored=True, ops_since_restore=50, fill_ratio=0.0)
    decision = policy.evaluate(old)
    assert decision.rotate and decision.reason == "restored_age>=50"


def test_never_policy_and_observation_rate():
    assert not NeverRotatePolicy().evaluate(observation(fill_ratio=1.0)).rotate
    assert observation(queries=0, positives=0).positive_rate == 0.0
    assert observation(queries=8, positives=2).positive_rate == 0.25


def test_policy_validation():
    for bad in (
        lambda: FillThresholdPolicy(0.0),
        lambda: FillThresholdPolicy(1.5),
        lambda: TimeBasedRecyclingPolicy(0),
        lambda: AdaptivePositiveRatePolicy(0.0),
        lambda: AdaptivePositiveRatePolicy(0.5, min_queries=0),
        lambda: RotateOnRestorePolicy(-1),
    ):
        with pytest.raises(ParameterError):
            bad()


# ----------------------------------------------------------------------
# Spec parsing and legacy mapping
# ----------------------------------------------------------------------


def test_parse_policy_round_trips_specs():
    for spec, kind in (
        ("never", NeverRotatePolicy),
        ("fill:0.5", FillThresholdPolicy),
        ("age:4000", TimeBasedRecyclingPolicy),
        ("adaptive:0.8", AdaptivePositiveRatePolicy),
        ("adaptive:0.8:32", AdaptivePositiveRatePolicy),
        ("restore:2000", RotateOnRestorePolicy),
        ("restore:2000+fill:0.5", RotateOnRestorePolicy),
    ):
        policy = parse_policy(spec)
        assert isinstance(policy, kind)
        rebuilt = parse_policy(policy.spec())
        assert rebuilt.spec() == policy.spec()
    wrapped = parse_policy("restore:100+age:50")
    assert isinstance(wrapped.inner, TimeBasedRecyclingPolicy)
    assert wrapped.spec() == "restore:100+age:50"


def test_parse_policy_rejects_garbage():
    for bad in (
        "",
        "   ",
        "lru:3",
        "fill",
        "fill:abc",
        "fill:0.5:9",
        "age:2.5e",
        "never:1",
        "adaptive",
        "adaptive:0.5:2:2:2",
        "adaptive:0.5:2:nope",
        "adaptive:0.8:64:32",  # min_queries must fit inside the window
        "adaptive:0.8:32:999999",  # window beyond the retention cap
        "fill:0.5+age:100",  # only restore may wrap
        "restore:10+lru:3",
    ):
        with pytest.raises(ParameterError):
            parse_policy(bad)


def test_policy_from_guard_maps_saturation_guard_exactly():
    # The legacy mapping still works byte-for-byte, but is deprecated.
    with pytest.warns(DeprecationWarning, match="rotation_policy"):
        policy = policy_from_guard(SaturationGuard(0.42))
    assert isinstance(policy, FillThresholdPolicy)
    assert policy.threshold == 0.42

    class WeirdGuard:
        def should_rotate(self, state) -> bool:
            return state.hamming_weight > 5

    with pytest.warns(DeprecationWarning):
        adapted = policy_from_guard(WeirdGuard())
    assert adapted.evaluate(observation(hamming_weight=6)).rotate
    assert not adapted.evaluate(observation(hamming_weight=5)).rotate


def test_config_rotation_policy_knob():
    config = ServiceConfig(rotation_policy="age:500", rotation_threshold=None)
    gateway = MembershipGateway.from_config(config)
    assert isinstance(gateway.policy, TimeBasedRecyclingPolicy)
    # The policy knob wins over the legacy threshold when both are set.
    both = MembershipGateway.from_config(
        ServiceConfig(rotation_policy="never", rotation_threshold=0.5)
    )
    assert isinstance(both.policy, NeverRotatePolicy)
    # The legacy threshold alone still maps to FillThresholdPolicy.
    legacy = MembershipGateway.from_config(ServiceConfig(rotation_threshold=0.4))
    assert isinstance(legacy.policy, FillThresholdPolicy)
    assert legacy.policy.threshold == 0.4
    assert legacy.guard is not None  # pre-policy introspection survives
    with pytest.raises(ParameterError):
        ServiceConfig(rotation_policy="fill:2.0")
    with pytest.raises(ParameterError):
        ServiceConfig(rotation_policy="bogus")


# ----------------------------------------------------------------------
# Gateway integration over both backends
# ----------------------------------------------------------------------


def shard0_heavy_urls(gateway: MembershipGateway, count: int) -> list[str]:
    """URLs the gateway routes to shard 0 (aimable public hash)."""
    factory = UrlFactory(seed=99)
    out = []
    while len(out) < count:
        url = factory.url()
        if gateway.shard_of(url) == 0:
            out.append(url)
    return out


@pytest.fixture(params=["local", "process"])
def backend_kind(request):
    return request.param


def build_gateway(backend_kind: str, policy, m: int = 512) -> MembershipGateway:
    def factory() -> BloomFilter:
        return BloomFilter(m, 4)

    backend = (
        ProcessPoolBackend(factory, 2)
        if backend_kind == "process"
        else LocalBackend(factory, 2)
    )
    return MembershipGateway(
        factory, backend=backend, picker=HashShardPicker(), policy=policy
    )


def test_fill_policy_rotates_over_backends(backend_kind):
    with build_gateway(backend_kind, FillThresholdPolicy(0.3), m=256) as gateway:
        asyncio.run(gateway.insert_batch(shard0_heavy_urls(gateway, 120)))
        assert gateway.rotations >= 1
        event = gateway.rotation_log[0]
        assert event.policy == "fill"
        assert event.reason == "fill_ratio>=0.3"
        assert event.op_epoch > 0
        assert gateway.shard_state(0).fill_ratio < 0.3


def test_age_policy_rotates_over_backends(backend_kind):
    with build_gateway(backend_kind, TimeBasedRecyclingPolicy(40)) as gateway:
        targeted = shard0_heavy_urls(gateway, 90)
        asyncio.run(gateway.insert_batch(targeted[:45]))
        asyncio.run(gateway.query_batch(targeted[45:]))
        assert gateway.rotations >= 2  # 90 targeted ops / 40-op budget
        assert all(e.reason == "age_ops>=40" for e in gateway.rotation_log)
        assert all(e.shard_id == 0 for e in gateway.rotation_log)
        # The backend's instance clock restarted with the last rotation.
        assert gateway.shard_state(0).age_ops < 40


def test_adaptive_policy_rotates_on_positive_spike(backend_kind):
    policy = AdaptivePositiveRatePolicy(0.9, min_queries=20)
    with build_gateway(backend_kind, policy) as gateway:
        targeted = shard0_heavy_urls(gateway, 60)
        asyncio.run(gateway.insert_batch(targeted[:30]))
        assert gateway.rotations == 0  # inserts alone never trip it
        # All-positive queries (re-querying the inserted set): spike.
        asyncio.run(gateway.query_batch(targeted[:30]))
        assert gateway.rotations == 1
        assert gateway.rotation_log[0].reason == "positive_rate>=0.9"
        # The rotation reset the lifecycle window.
        assert gateway.lifecycle[0].queries == 0


def test_windowed_adaptive_policy_rotates_late_over_backends(backend_kind):
    # A long honest life dilutes the since-rotation rate; only the
    # windowed policy catches the late all-positive storm.
    policy = AdaptivePositiveRatePolicy(0.9, min_queries=16, window=32)
    with build_gateway(backend_kind, policy, m=4096) as gateway:
        targeted = shard0_heavy_urls(gateway, 200)
        asyncio.run(gateway.insert_batch(targeted[:100]))
        # Honest-ish phase: mostly-negative queries pile up history.
        asyncio.run(gateway.query_batch(targeted[100:200]))
        assert gateway.rotations == 0
        diluted = gateway.lifecycle[0].observe(
            gateway.backend.state(0), gateway.op_epoch
        )
        assert diluted.positive_rate < 0.9  # the unwindowed rule never fires
        # Late storm: re-query known items in small batches -> window spikes.
        for start in range(0, 48, 8):
            asyncio.run(gateway.query_batch(targeted[start : start + 8]))
            if gateway.rotations:
                break
        assert gateway.rotations >= 1
        assert gateway.rotation_log[0].reason == "window_positive_rate>=0.9"
        # Rotation cleared the window with the rest of the history.
        assert gateway.lifecycle[0].window_rate() == 0.0


def test_window_survives_snapshot_round_trip(backend_kind):
    policy = AdaptivePositiveRatePolicy(0.9, min_queries=16, window=32)
    with build_gateway(backend_kind, policy) as gateway:
        asyncio.run(gateway.insert_batch(URLS[:60]))
        asyncio.run(gateway.query_batch(URLS[:40]))
        raw = snapshot_gateway(gateway)
        with build_gateway(backend_kind, policy) as restored:
            restore_gateway(restored, raw)
            for a, b in zip(gateway.lifecycle, restored.lifecycle):
                obs_a = a.observe(gateway.backend.state(a.shard_id), 0)
                obs_b = b.observe(restored.backend.state(b.shard_id), 0)
                assert obs_a.recent == obs_b.recent
                assert a.window_rate() == b.window_rate()
            # The stats table (recent_pos column included) survives too.
            assert restored.render_stats() == gateway.render_stats()


def test_rotate_on_restore_expires_restored_shards(backend_kind):
    policy = RotateOnRestorePolicy(10, inner=FillThresholdPolicy(0.9))
    with build_gateway(backend_kind, policy) as gateway:
        asyncio.run(gateway.insert_batch(URLS[:60]))
        assert gateway.rotations == 0  # live shards: wrapper is inert
        raw = snapshot_gateway(gateway)

        with build_gateway(backend_kind, policy) as restored:
            restore_gateway(restored, raw)
            assert all(life.restored for life in restored.lifecycle)
            # Young restored shards keep serving ...
            asyncio.run(restored.query_batch(URLS[:8]))
            # ... until the post-restore budget runs out on each shard.
            asyncio.run(restored.query_batch(URLS[:40]))
            asyncio.run(restored.query_batch(URLS[40:80]))
            assert restored.rotations >= 1
            assert all(
                e.reason == "restored_age>=10" for e in restored.rotation_log
            )
            # Expired shards are fresh: no longer flagged restored.
            rotated = {e.shard_id for e in restored.rotation_log}
            for shard_id in rotated:
                assert not restored.lifecycle[shard_id].restored


def test_policy_state_snapshot_parity(backend_kind):
    """(age, counters, restored) survive a snapshot byte-exactly."""
    with build_gateway(backend_kind, TimeBasedRecyclingPolicy(10_000)) as gateway:
        asyncio.run(gateway.insert_batch(URLS[:100]))
        asyncio.run(gateway.query_batch(URLS[:150]))
        raw = snapshot_gateway(gateway)
        with build_gateway(backend_kind, TimeBasedRecyclingPolicy(10_000)) as restored:
            restore_gateway(restored, raw)
            assert restored.op_epoch == gateway.op_epoch == 250
            for a, b in zip(gateway.lifecycle, restored.lifecycle):
                obs_a = a.observe(gateway.backend.state(a.shard_id), gateway.op_epoch)
                obs_b = b.observe(
                    restored.backend.state(b.shard_id), restored.op_epoch
                )
                assert (obs_a.age_ops, obs_a.inserts, obs_a.queries, obs_a.positives) == (
                    obs_b.age_ops,
                    obs_b.inserts,
                    obs_b.queries,
                    obs_b.positives,
                )
            # A second snapshot/restore cycle is a byte-level fixed point.
            again = snapshot_gateway(restored)
            with build_gateway(
                backend_kind, TimeBasedRecyclingPolicy(10_000)
            ) as third:
                restore_gateway(third, again)
                assert snapshot_gateway(third) == again


def test_counting_shards_snapshot_through_gateway(backend_kind):
    """CountingBloomFilter shards ride the same gateway snapshot path."""

    def factory() -> CountingBloomFilter:
        return CountingBloomFilter(512, 4)

    backend = (
        ProcessPoolBackend(factory, 2)
        if backend_kind == "process"
        else LocalBackend(factory, 2)
    )
    with MembershipGateway(
        factory, backend=backend, picker=HashShardPicker(), policy=FillThresholdPolicy(0.9)
    ) as gateway:
        asyncio.run(gateway.insert_batch(URLS[:80]))
        raw = snapshot_gateway(gateway)
        with MembershipGateway(
            factory,
            backend=(
                ProcessPoolBackend(factory, 2)
                if backend_kind == "process"
                else LocalBackend(factory, 2)
            ),
            picker=HashShardPicker(),
            policy=FillThresholdPolicy(0.9),
        ) as restored:
            restore_gateway(restored, raw)
            assert asyncio.run(restored.query_batch(URLS[:120])) == asyncio.run(
                gateway.query_batch(URLS[:120])
            )
            for shard_id in range(2):
                assert restored.backend.export_shard(
                    shard_id
                ) == gateway.backend.export_shard(shard_id)


def test_rotation_log_renders_and_no_policy_means_no_rotation():
    gateway = MembershipGateway(
        lambda: BloomFilter(128, 4), shards=2, picker=HashShardPicker()
    )
    asyncio.run(gateway.insert_batch(URLS[:200]))
    assert gateway.rotations == 0  # no policy, no guard: never rotate
    guarded = MembershipGateway(
        lambda: BloomFilter(128, 4),
        shards=2,
        picker=HashShardPicker(),
        policy=FillThresholdPolicy(0.2),
    )
    asyncio.run(guarded.insert_batch(URLS[:200]))
    assert guarded.rotations >= 1
    stats = guarded.render_stats()
    assert "rotation log" in stats
    assert "fill_ratio>=0.2" in stats


def test_shard_state_age_ops_defaults_and_equality():
    # Positional construction (pre-lifecycle call sites) still works and
    # compares equal to a zero-age state.
    assert ShardState(0, 0.0, 0) == ShardState(
        hamming_weight=0, fill_ratio=0.0, insertions=0, age_ops=0
    )


def test_lifecycle_state_round_trip_marks_mid_life_restores():
    life = ShardLifecycleState(1)
    life.note_inserts(30)
    life.note_queries(20, 5)
    state = life.to_state(instance_ops=50)
    assert state == {
        "age_ops": 50,
        "inserts": 30,
        "queries": 20,
        "positives": 5,
        "restored": False,
        "restore_epoch": 0,
        "window": ((20, 5),),
        "suppressed": 0,
        "streaks": {},
    }
    back = ShardLifecycleState.from_state(1, state, restore_epoch=77)
    assert back.restored and back.restore_epoch == 77
    assert back.age_base == 50
    # The sliding window crossed the snapshot too.
    assert back.window_rate() == 5 / 20
    # A fresh, never-worked shard does not come back flagged.
    empty = ShardLifecycleState.from_state(
        0, ShardLifecycleState(0).to_state(0), restore_epoch=77
    )
    assert not empty.restored and empty.restore_epoch == 0
    # An already-restored shard keeps its first-restore epoch across
    # further snapshot/restore cycles (the field is stable, not
    # rewritten on every restore).
    again = ShardLifecycleState.from_state(1, back.to_state(10), restore_epoch=200)
    assert again.restored and again.restore_epoch == 77


def test_process_shard_view_keeps_counting_overflow_policy():
    from repro.core.counters import OverflowPolicy

    def factory() -> CountingBloomFilter:
        return CountingBloomFilter(256, 3, overflow=OverflowPolicy.WRAP)

    with ProcessPoolBackend(factory, 1) as backend:
        asyncio.run(backend.insert_batch(0, URLS[:10]))
        view = backend.shard_view(0)
        assert isinstance(view, CountingBloomFilter)
        # The white-box view mirrors the worker's configuration, not the
        # from_snapshot default.
        assert view.overflow is OverflowPolicy.WRAP
        assert all(url in view for url in URLS[:10])
