"""Cluster tier: ring placement, ownership epochs, handoff, routing.

Covers the consistent-hash ring (determinism, membership stability),
the picker spec grammar, the epoch-versioned ownership map, owned-subset
gateways with ``NotOwner`` refusals, byte-exact shard handoff with
stale-epoch replay protection, the redirect-following cluster client
(including its bounded-redirect failure mode), the gateway-shaped
cluster view, and a tcp-local cluster whose handoff crosses the wire.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.bloom import BloomFilter
from repro.exceptions import (
    ConfigError,
    NotOwner,
    ParameterError,
    ProtocolError,
    SnapshotError,
)
from repro.service.cluster import (
    ClusterClient,
    ClusterHarness,
    HashRing,
    OwnershipMap,
)
from repro.service.cluster.ring import (
    HashShardPicker,
    KeyedShardPicker,
    parse_picker,
)
from repro.service.config import ServiceConfig
from repro.service.gateway import MembershipGateway
from repro.service.snapshots import parse_shard_block, snapshot_shard
from repro.urlgen.faker import UrlFactory

URLS = UrlFactory(seed=0xC1).urls(200)


def member(
    shard_ids, total: int = 4, m: int = 512, **kwargs
) -> MembershipGateway:
    """A gateway owning a subset of a global shard space."""
    kwargs.setdefault("picker", HashShardPicker())
    return MembershipGateway(
        lambda: BloomFilter(m, 4),
        shard_ids=shard_ids,
        total_shards=total,
        **kwargs,
    )


def aimed_at(shard_id: int, count: int, total: int = 4) -> list[str]:
    """Items the public router sends to ``shard_id``."""
    picker = HashShardPicker()
    return [u for u in URLS if picker.pick(u, total) == shard_id][:count]


# ----------------------------------------------------------------------
# Picker specs
# ----------------------------------------------------------------------


def test_picker_spec_round_trip():
    public = HashShardPicker(seed=0xBEEF)
    assert public.spec() == "murmur:0xbeef"
    again = parse_picker(public.spec())
    assert [again.pick(u, 8) for u in URLS[:32]] == [
        public.pick(u, 8) for u in URLS[:32]
    ]
    keyed = KeyedShardPicker()
    rebuilt = parse_picker(keyed.spec())
    assert rebuilt.key == keyed.key
    assert [rebuilt.pick(u, 8) for u in URLS[:32]] == [
        keyed.pick(u, 8) for u in URLS[:32]
    ]
    # Bare kinds are legal: default seed / fresh key.
    assert parse_picker("murmur").seed == HashShardPicker().seed
    assert len(parse_picker("siphash").key) == 16


def test_parse_picker_rejects_malformed_specs():
    for bad in (
        "",
        "   ",
        "md5",
        "murmur:zz",
        "murmur:0x1ffffffff",
        "murmur:-1",
        "siphash:nothex",
        "siphash:abcd",
        "siphash:" + "ab" * 17,
    ):
        with pytest.raises(ConfigError):
            parse_picker(bad)
    with pytest.raises(ConfigError, match="must be a string"):
        parse_picker(42)


def test_config_router_knob_validated_at_build_time():
    config = ServiceConfig(router="murmur:0x7")
    gateway = MembershipGateway.from_config(config)
    assert gateway.picker.seed == 0x7
    gateway.close()
    with pytest.raises(ConfigError):
        ServiceConfig(router="sha1")
    # The router spec wins over the legacy keyed_routing flag.
    both = ServiceConfig(router="murmur:0x7", keyed_routing=True)
    gateway = MembershipGateway.from_config(both)
    assert isinstance(gateway.picker, HashShardPicker)
    gateway.close()


# ----------------------------------------------------------------------
# The ring
# ----------------------------------------------------------------------


def test_ring_assignment_is_deterministic_and_order_blind():
    ring = HashRing(["alpha", "beta", "gamma"])
    assign = ring.assign(64)
    assert sorted(assign) == list(range(64))
    assert set(assign.values()) <= {"alpha", "beta", "gamma"}
    # Placement depends on names, not on the order they were given.
    shuffled = HashRing(["gamma", "alpha", "beta"])
    assert shuffled.assign(64) == assign


def test_ring_membership_change_moves_only_departing_nodes_shards():
    ring = HashRing(["alpha", "beta", "gamma"])
    before = ring.assign(64)
    after = ring.with_nodes(["alpha", "beta"]).assign(64)
    moved = {s for s in before if before[s] != after[s]}
    # Consistent hashing: every moved shard belonged to the node that
    # left; nothing else reshuffles.
    assert moved == {s for s, owner in before.items() if owner == "gamma"}
    assert all(after[s] in ("alpha", "beta") for s in moved)


def test_keyed_ring_hides_placement():
    key = bytes(range(16))
    public = HashRing(["alpha", "beta", "gamma"])
    keyed = HashRing(["alpha", "beta", "gamma"], picker=KeyedShardPicker(key))
    assert keyed.assign(64) != public.assign(64)
    # Same key, same placement: the ring is reproducible, just secret.
    again = HashRing(["alpha", "beta", "gamma"], picker=KeyedShardPicker(key))
    assert again.assign(64) == keyed.assign(64)


def test_ring_rejects_bad_membership():
    with pytest.raises(ParameterError):
        HashRing([])
    with pytest.raises(ParameterError):
        HashRing(["a", "a"])
    with pytest.raises(ParameterError):
        HashRing(["a"], vnodes=0)


# ----------------------------------------------------------------------
# The ownership map
# ----------------------------------------------------------------------


def test_ownership_move_bumps_epoch_and_noop_does_not():
    owners = OwnershipMap({0: "a", 1: "a", 2: "b", 3: "b"})
    assert owners.epoch == 1
    assert owners.move(0, "b") == 2
    assert owners.owner_of(0) == "b"
    assert owners.move(0, "b") == 2  # no-op: no epoch burned
    assert owners.shards_of("a") == (1,)
    assert owners.nodes() == ("a", "b")
    with pytest.raises(ParameterError):
        owners.owner_of(4)
    with pytest.raises(ParameterError):
        OwnershipMap({0: "a", 2: "b"})  # hole in the space


def test_ownership_note_believes_only_strictly_newer_epochs():
    authoritative = OwnershipMap({0: "a", 1: "b"})
    view = authoritative.copy()
    authoritative.move(0, "b")  # epoch 2
    assert view.note(0, "b", epoch=2) is True
    assert view.owner_of(0) == "b" and view.epoch == 2
    # Replayed/stale redirects change nothing.
    assert view.note(0, "a", epoch=2) is False
    assert view.note(0, "a", epoch=1) is False
    assert view.note(0, "", epoch=9) is False  # "no view" sentinel
    assert view.owner_of(0) == "b"
    # The copy is independent of the authoritative map.
    assert authoritative.epoch == 2 and view.epoch == 2
    view.note(1, "a", epoch=5)
    assert authoritative.owner_of(1) == "b"


# ----------------------------------------------------------------------
# Owned-subset gateways
# ----------------------------------------------------------------------


def test_subset_gateway_serves_owned_and_refuses_foreign_shards():
    gateway = member([1, 3])
    assert gateway.shards == 2 and gateway.total_shards == 4
    owned = aimed_at(1, 5) + aimed_at(3, 5)
    foreign = aimed_at(0, 3)
    asyncio.run(gateway.insert_batch(owned, client="t"))
    assert all(asyncio.run(gateway.query_batch(owned, client="t")))
    with pytest.raises(NotOwner) as info:
        asyncio.run(gateway.query_batch(foreign, client="t"))
    assert info.value.shard_id == 0
    # The whole batch is refused before any shard mutates: a batch
    # mixing owned and foreign shards inserts nothing.
    probe = aimed_at(1, 10)[5:] + foreign
    with pytest.raises(NotOwner):
        asyncio.run(gateway.insert_batch(probe, client="t"))
    assert not any(asyncio.run(gateway.query_batch(probe[:1], client="t")))
    gateway.close()


def test_subset_gateway_requires_explicit_total():
    with pytest.raises(ParameterError):
        MembershipGateway(lambda: BloomFilter(256, 4), shard_ids=[0, 1])
    with pytest.raises(ParameterError):
        member([0, 0])  # duplicate ids
    with pytest.raises(ParameterError):
        member([5])  # outside the global space


# ----------------------------------------------------------------------
# Handoff
# ----------------------------------------------------------------------


def _handoff_pair() -> tuple[MembershipGateway, MembershipGateway]:
    source = member([0, 1])
    target = member([2, 3])
    asyncio.run(source.insert_batch(aimed_at(0, 20) + aimed_at(1, 10), client="w"))
    return source, target


def test_handoff_is_byte_exact_and_transfers_service():
    source, target = _handoff_pair()
    answers_before = asyncio.run(source.query_batch(aimed_at(0, 20), client="w"))
    block = asyncio.run(source.release_shard(0, epoch=2))
    target.adopt_shard(0, 2, block)
    # Re-exporting from the adopter reproduces the wire block exactly:
    # filter bits, lifecycle scratch and telemetry all round-tripped.
    assert asyncio.run(target.export_shard_block(0)) == block
    assert asyncio.run(target.query_batch(aimed_at(0, 20), client="w")) == answers_before
    # The source no longer owns the shard.
    assert source.shard_ids == [1]
    with pytest.raises(NotOwner):
        asyncio.run(source.query_batch(aimed_at(0, 1), client="w"))
    source.close()
    target.close()


def test_handoff_replay_and_double_adopt_rejected():
    source, target = _handoff_pair()
    block = asyncio.run(source.release_shard(0, epoch=2))
    target.adopt_shard(0, 2, block)
    # A replayed handoff cannot resurrect the shard on its old owner:
    # the release epoch is remembered and only strictly newer wins.
    with pytest.raises(ParameterError, match="epoch"):
        source.adopt_shard(0, 2, block)
    with pytest.raises(ParameterError, match="epoch"):
        source.adopt_shard(0, 1, block)
    # The adopter refuses a second copy outright.
    with pytest.raises(ParameterError, match="already served"):
        target.adopt_shard(0, 5, block)
    # A block for shard 0 cannot be adopted under another shard id.
    bystander = member([])
    with pytest.raises(ParameterError, match="shard"):
        bystander.adopt_shard(2, 5, block)
    source.close()
    target.close()
    bystander.close()


def test_poisoned_handoff_block_leaves_adopter_unchanged():
    source, target = _handoff_pair()
    block = asyncio.run(source.release_shard(0, epoch=2))
    before_ids = list(target.shard_ids)
    # Truncated block: rejected while parsing, before any state changes.
    with pytest.raises(SnapshotError):
        target.adopt_shard(0, 2, block[:-8])
    # Parseable block whose embedded filter section is corrupt: the
    # backend restore fails and the freshly-attached slot rolls back.
    poisoned = bytearray(block)
    magic_at = bytes(block).rindex(b"RBFS")
    poisoned[magic_at : magic_at + 4] = b"XXXX"
    with pytest.raises((SnapshotError, ProtocolError, ParameterError)):
        target.adopt_shard(0, 2, bytes(poisoned))
    assert target.shard_ids == before_ids
    # The untouched adopter still serves its own shards.
    assert asyncio.run(target.query_batch(aimed_at(2, 1), client="w")) in ([True], [False])
    # And the genuine block still adopts cleanly afterwards.
    target.adopt_shard(0, 2, block)
    assert 0 in target.shard_ids
    source.close()
    target.close()


def test_shard_block_parses_and_rejects_corruption():
    source, _ = _handoff_pair()
    block = asyncio.run(source.export_shard_block(0))
    parsed = parse_shard_block(block)
    assert parsed.shard_id == 0
    assert parsed.telemetry.inserts > 0
    assert parsed.lifecycle["inserts"] > 0
    with pytest.raises(SnapshotError):
        parse_shard_block(b"XXXX" + block[4:])  # bad magic
    with pytest.raises(SnapshotError):
        parse_shard_block(block + b"\x00")  # trailing garbage
    assert snapshot_shard(source, 0) == block
    source.close()


# ----------------------------------------------------------------------
# The routing client and harness
# ----------------------------------------------------------------------


def test_cluster_client_routes_batches_across_nodes():
    async def scenario():
        async with ClusterHarness(["a", "b", "c"], total_shards=8) as harness:
            async with harness.client() as client:
                inserted = await client.insert_batch(URLS[:100], client="w")
                assert len(inserted) == 100
                answers = await client.query_batch(URLS[:120], client="w")
                assert answers[:100] == [True] * 100
            # Every node saw some of the traffic (8 shards over 3 nodes
            # leaves nobody idle for this workload).
            return [g.telemetry for g in harness.gateways.values()]

    telemetry = asyncio.run(scenario())
    assert all(sum(t.inserts for t in node) > 0 for node in telemetry)


def test_cluster_client_follows_redirects_after_move():
    async def scenario():
        async with ClusterHarness(["a", "b"], total_shards=4) as harness:
            stale = harness.client()
            await stale.insert_batch(URLS[:60], client="w")
            source = harness.ownership.owner_of(0)
            destination = "b" if source == "a" else "a"
            epoch = await harness.move_shard(0, destination)
            assert epoch == 2
            assert harness.ownership.owner_of(0) == destination
            # The stale client still answers -- one redirect round
            # teaches its private view the new epoch.
            answers = await stale.query_batch(URLS[:60], client="w")
            assert answers == [True] * 60
            assert stale.redirects_followed >= 1
            assert stale.ownership.epoch == epoch
            # A fresh client starts converged.
            fresh = harness.client()
            assert fresh.ownership.owner_of(0) == destination
            return True

    assert asyncio.run(scenario())


def test_cluster_client_bounds_redirect_rounds():
    async def scenario():
        # A gateway owning nothing and holding no ownership view sends
        # contentless redirects (epoch 0): the client can never learn a
        # better route and must fail loudly instead of spinning.
        empty = member([], total=4)
        owners = OwnershipMap({0: "a", 1: "a", 2: "a", 3: "a"})
        client = ClusterClient(
            {"a": empty},
            owners,
            picker=HashShardPicker(),
            max_redirects=3,
            retry_backoff_s=0.0,
        )
        with pytest.raises(ProtocolError, match="did not converge"):
            await client.query(URLS[0], client="w")
        empty.close()
        return True

    assert asyncio.run(scenario())


def test_cluster_view_is_gateway_shaped():
    async def scenario():
        async with ClusterHarness(["a", "b", "c"], total_shards=8) as harness:
            view = harness.view
            await view.insert_batch(URLS[:80], client="w")
            assert await view.query(URLS[0], client="w")
            assert view.shards == 8 and view.total_shards == 8
            assert view.shard_of(URLS[0]) == view.picker.pick(URLS[0], 8)
            assert len(view.lifecycle) == 8
            assert [s.shard_id for s in view.snapshot()] == list(range(8))
            assert sum(s.inserts for s in view.snapshot()) == 80
            assert view.shard_state(0).fill_ratio >= 0
            assert view.rotations == sum(
                g.rotations for g in harness.gateways.values()
            )
            assert "ownership epoch" in view.render_stats()
            return True

    assert asyncio.run(scenario())


def test_tcp_cluster_handoff_crosses_the_wire():
    async def scenario():
        config = ServiceConfig(shard_m=512, rotation_threshold=None)
        async with ClusterHarness(
            ["a", "b"], total_shards=4, config=config, mode="tcp"
        ) as harness:
            stale = harness.client()
            try:
                await stale.insert_batch(URLS[:60], client="w")
                source = harness.ownership.owner_of(0)
                destination = "b" if source == "a" else "a"
                before = await harness.gateways[source].export_shard_block(0)
                await harness.move_shard(0, destination)
                # The handoff travelled through OP_HANDOFF frames; the
                # adopted shard re-exports byte-identically.
                after = await harness.gateways[destination].export_shard_block(0)
                assert after == before
                # The stale client converges through ST_NOT_OWNER
                # redirects carried over TCP.
                answers = await stale.query_batch(URLS[:60], client="w")
                assert answers == [True] * 60
                assert stale.redirects_followed >= 1
            finally:
                await stale.aclose()
            return True

    assert asyncio.run(scenario())
