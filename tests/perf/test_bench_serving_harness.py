"""The serving bench harness and its CI gate.

Same contract as the hot-path harness tests: a smoke run produces a
schema-tagged, internally consistent document; :func:`check_bench_file`
rejects every way the committed file can rot -- including a full run
that no longer shows the headline single-item coalescing win -- and the
repository's ``BENCH_serving.json`` itself must validate.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.perf.bench_serving import (
    BENCH_SCHEMA,
    check_bench_file,
    main,
    run_bench,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def smoke_doc():
    return run_bench(("inproc",), (1,), repeats=1, clients=4, smoke=True)


def test_smoke_run_document_shape():
    doc = smoke_doc()
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["smoke"] is True
    cells = {
        (r["transport"], r["coalesce"], r["request_size"]) for r in doc["results"]
    }
    assert cells == {("inproc", False, 1), ("inproc", True, 1)}
    for row in doc["results"]:
        assert row["seconds"] > 0
        assert row["requests_per_sec"] == pytest.approx(
            row["clients"] * row["rounds"] / row["seconds"], rel=0.01
        )
    assert doc["speedups"] == [
        {
            "transport": "inproc",
            "request_size": 1,
            "speedup": doc["speedups"][0]["speedup"],
        }
    ]
    # The "on" cell actually coalesced.
    on = next(r for r in doc["results"] if r["coalesce"])
    assert on["coalesce_ratio"] > 1.0


def test_check_accepts_smoke_document(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(smoke_doc()))
    assert check_bench_file(str(path))["schema"] == BENCH_SCHEMA


def test_check_rejects_missing_file(tmp_path):
    with pytest.raises(ValueError, match="missing"):
        check_bench_file(str(tmp_path / "nope.json"))


def test_check_rejects_invalid_json(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        check_bench_file(str(path))


def test_check_rejects_stale_schema(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"schema": "repro.bench_serving/0", "results": [{}]}))
    with pytest.raises(ValueError, match="regenerate"):
        check_bench_file(str(path))


def test_check_rejects_missing_row_keys(tmp_path):
    path = tmp_path / "bench.json"
    row = {"transport": "inproc", "coalesce": True}
    path.write_text(json.dumps({"schema": BENCH_SCHEMA, "results": [row]}))
    with pytest.raises(ValueError, match="missing keys"):
        check_bench_file(str(path))


def test_check_rejects_full_run_below_headline_speedup(tmp_path):
    doc = smoke_doc()
    doc["smoke"] = False  # full runs must prove the claim
    doc["speedups"] = [
        {"transport": "inproc", "request_size": 1, "speedup": 1.2}
    ]
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="below the claimed x3.0"):
        check_bench_file(str(path))


def test_check_rejects_full_run_without_single_item_cells(tmp_path):
    doc = smoke_doc()
    doc["smoke"] = False
    doc["speedups"] = [
        {"transport": "inproc", "request_size": 8, "speedup": 9.0}
    ]
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="no single-item"):
        check_bench_file(str(path))


def test_committed_bench_file_validates():
    """The gate CI runs: the committed serving numbers must hold up."""
    doc = check_bench_file(str(REPO_ROOT / "BENCH_serving.json"))
    assert doc["smoke"] is False
    best = max(
        cell["speedup"]
        for cell in doc["speedups"]
        if cell["request_size"] == 1
    )
    assert best >= 3.0


def test_cli_smoke_and_check(tmp_path, capsys):
    out = tmp_path / "smoke.json"
    assert main(["--smoke", "--out", str(out)]) == 0
    assert main(["--check", str(out)]) == 0
    assert "schema repro.bench_serving/1" in capsys.readouterr().out
