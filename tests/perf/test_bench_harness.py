"""The hot-path bench harness and its CI gates.

A smoke run must produce a schema-tagged document whose cells are
internally consistent, :func:`check_bench_file` must reject every way
the committed file can rot, and the repository's ``BENCH_hotpath.json``
itself must validate -- the same gate CI runs.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro import accel
from repro.perf import BENCH_SCHEMA, StageTimer, check_bench_file, run_bench
from repro.perf.bench_hotpath import SMOKE_BATCH_SIZES, SMOKE_SHARD_COUNTS, main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_smoke_run_document_shape():
    doc = run_bench(SMOKE_BATCH_SIZES, SMOKE_SHARD_COUNTS, repeats=1)
    assert doc["schema"] == BENCH_SCHEMA
    modes = {"pure", "numpy"} if accel.numpy_or_none() else {"pure"}
    cells = {(r["op"], r["mode"], r["batch_size"], r["shards"]) for r in doc["results"]}
    assert len(cells) == len(doc["results"]), "duplicate grid cells"
    assert {c[1] for c in cells} == modes
    for row in doc["results"]:
        assert row["seconds"] > 0
        assert row["items_per_sec"] == pytest.approx(
            row["batch_size"] / row["seconds"], rel=0.01
        )
    if accel.numpy_or_none():
        assert doc["speedups"], "numpy present but no speedup cells"
        for cell in doc["speedups"]:
            assert cell["speedup"] > 0
    assert doc["stage_breakdown"], "stage breakdown missing"


def test_check_accepts_fresh_document(tmp_path):
    doc = run_bench(SMOKE_BATCH_SIZES, SMOKE_SHARD_COUNTS, repeats=1)
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(doc))
    assert check_bench_file(str(path))["schema"] == BENCH_SCHEMA


def test_check_rejects_missing_file(tmp_path):
    with pytest.raises(ValueError, match="missing"):
        check_bench_file(str(tmp_path / "nope.json"))


def test_check_rejects_invalid_json(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        check_bench_file(str(path))


def test_check_rejects_stale_schema(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"schema": "repro.bench_hotpath/0", "results": [{}]}))
    with pytest.raises(ValueError, match="regenerate"):
        check_bench_file(str(path))


def test_check_rejects_empty_results(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"schema": BENCH_SCHEMA, "results": []}))
    with pytest.raises(ValueError, match="no results"):
        check_bench_file(str(path))


def test_check_rejects_missing_row_keys(tmp_path):
    path = tmp_path / "bench.json"
    row = {"op": "insert", "mode": "pure"}  # missing the numeric fields
    path.write_text(json.dumps({"schema": BENCH_SCHEMA, "results": [row]}))
    with pytest.raises(ValueError, match="missing keys"):
        check_bench_file(str(path))


def test_committed_bench_file_validates():
    """The gate CI runs: the committed trajectory must stay loadable."""
    doc = check_bench_file(str(REPO_ROOT / "BENCH_hotpath.json"))
    assert doc["config"]["m_per_shard"] > 0


def test_cli_check_mode(capsys):
    assert main(["--check", str(REPO_ROOT / "BENCH_hotpath.json")]) == 0
    assert "schema repro.bench_hotpath/1" in capsys.readouterr().out


def test_cli_smoke_writes_file(tmp_path):
    out = tmp_path / "smoke.json"
    assert main(["--smoke", "--out", str(out)]) == 0
    assert check_bench_file(str(out))


def test_stage_timer_accumulates_and_reports():
    timer = StageTimer()
    with timer.stage("a"):
        time.sleep(0.01)
    with timer.stage("a"):
        pass
    with timer.stage("b"):
        pass
    report = timer.report()
    assert report["a"]["calls"] == 2
    assert report["b"]["calls"] == 1
    assert timer.seconds("a") >= 0.01
    assert sum(stage["share"] for stage in report.values()) == pytest.approx(1.0, abs=0.01)
    timer.reset()
    assert timer.report() == {}
