"""The crafting bench harness and its CI gates.

A smoke run must produce a schema-tagged document whose cells are
internally consistent, :func:`check_bench_file` must reject every way
the committed file can rot (including a headline-claim regression in a
full run), and the repository's ``BENCH_crafting.json`` itself must
validate -- the same gate CI runs.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro import accel
from repro.perf.bench_crafting import (
    BENCH_SCHEMA,
    CLAIMED_SPEEDUP,
    SMOKE_PREDICATES,
    SMOKE_SCALES,
    check_bench_file,
    main,
    run_bench,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _smoke_doc() -> dict:
    return run_bench(SMOKE_SCALES, SMOKE_PREDICATES, repeats=1, smoke=True)


def test_smoke_run_document_shape():
    doc = _smoke_doc()
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["smoke"] is True
    modes = {"pure", "numpy"} if accel.numpy_or_none() else {"pure"}
    cells = {(r["predicate"], r["mode"], r["k"]) for r in doc["results"]}
    assert len(cells) == len(doc["results"]), "duplicate grid cells"
    assert {c[1] for c in cells} == modes
    for row in doc["results"]:
        assert row["seconds"] > 0
        assert row["trials"] >= row["items"]
        assert row["trials_per_sec"] == pytest.approx(
            row["trials"] / row["seconds"], rel=0.01
        )
    if accel.numpy_or_none():
        assert doc["speedups"], "numpy present but no speedup cells"
        for cell in doc["speedups"]:
            assert cell["speedup"] > 0


def test_trial_counts_identical_across_modes():
    """The batched engine's exactness shows up in the bench itself: both
    modes replay the same pool against the same filter state, so every
    cell pair examines identical trial counts."""
    if accel.numpy_or_none() is None:
        pytest.skip("single-mode run has no pairs to compare")
    doc = _smoke_doc()
    by_cell = {(r["predicate"], r["mode"], r["k"]): r["trials"] for r in doc["results"]}
    for predicate, mode, k in list(by_cell):
        if mode == "pure":
            assert by_cell[(predicate, "numpy", k)] == by_cell[(predicate, "pure", k)]


def test_check_accepts_fresh_smoke_document(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(_smoke_doc()))
    assert check_bench_file(str(path))["schema"] == BENCH_SCHEMA


def test_check_rejects_missing_file(tmp_path):
    with pytest.raises(ValueError, match="missing"):
        check_bench_file(str(tmp_path / "nope.json"))


def test_check_rejects_invalid_json(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        check_bench_file(str(path))


def test_check_rejects_stale_schema(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"schema": "repro.bench_crafting/0", "results": [{}]}))
    with pytest.raises(ValueError, match="regenerate"):
        check_bench_file(str(path))


def test_check_rejects_empty_results(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"schema": BENCH_SCHEMA, "results": []}))
    with pytest.raises(ValueError, match="no results"):
        check_bench_file(str(path))


def test_check_rejects_missing_row_keys(tmp_path):
    path = tmp_path / "bench.json"
    row = {"predicate": "ghost", "mode": "pure"}  # missing the numeric fields
    path.write_text(json.dumps({"schema": BENCH_SCHEMA, "results": [row]}))
    with pytest.raises(ValueError, match="missing keys"):
        check_bench_file(str(path))


def _full_doc(speedup: float) -> dict:
    row = {
        "predicate": "ghost",
        "mode": "numpy",
        "k": 12,
        "m": 1 << 20,
        "items": 6,
        "trials": 24_000,
        "seconds": 0.5,
        "trials_per_sec": 48_000.0,
    }
    return {
        "schema": BENCH_SCHEMA,
        "smoke": False,
        "results": [row],
        "speedups": [{"predicate": "ghost", "k": 12, "m": 1 << 20, "speedup": speedup}],
    }


def test_check_enforces_the_claim_on_full_runs(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(_full_doc(CLAIMED_SPEEDUP - 0.1)))
    with pytest.raises(ValueError, match="below the claimed"):
        check_bench_file(str(path))
    path.write_text(json.dumps(_full_doc(CLAIMED_SPEEDUP + 0.1)))
    assert check_bench_file(str(path))


def test_check_demands_largest_scale_speedups_on_full_runs(tmp_path):
    doc = _full_doc(CLAIMED_SPEEDUP + 1)
    doc["speedups"] = [{"predicate": "ghost", "k": 4, "m": 1 << 14, "speedup": 9.0}]
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="largest"):
        check_bench_file(str(path))


def test_committed_bench_file_validates():
    """The gate CI runs: the committed file must hold the >=5x claim."""
    doc = check_bench_file(str(REPO_ROOT / "BENCH_crafting.json"))
    assert not doc.get("smoke"), "the committed bench must be a full run"
    largest_k = max(row["k"] for row in doc["results"])
    best = max(c["speedup"] for c in doc["speedups"] if c["k"] == largest_k)
    assert best >= CLAIMED_SPEEDUP


def test_cli_check_mode(capsys):
    assert main(["--check", str(REPO_ROOT / "BENCH_crafting.json")]) == 0
    assert "schema repro.bench_crafting/1" in capsys.readouterr().out
