"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.bloom import BloomFilter
from repro.core.counting import CountingBloomFilter
from repro.core.counters import OverflowPolicy
from repro.hashing.kirsch_mitzenmacher import KirschMitzenmacherStrategy
from repro.urlgen.faker import UrlFactory


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xDEAD)


@pytest.fixture
def url_factory() -> UrlFactory:
    """A seeded URL factory."""
    return UrlFactory(seed=42)


@pytest.fixture
def small_filter() -> BloomFilter:
    """The paper's Fig. 3 filter: m=3200, k=4."""
    return BloomFilter(3200, 4)


@pytest.fixture
def counting_filter() -> CountingBloomFilter:
    """A small counting filter with saturating counters."""
    return CountingBloomFilter(2000, 4, overflow=OverflowPolicy.SATURATE)


@pytest.fixture
def dablooms_slice() -> CountingBloomFilter:
    """A Dablooms-style slice: KM/murmur strategy, 4-bit wrapping counters."""
    return CountingBloomFilter(
        958,
        7,
        strategy=KirschMitzenmacherStrategy(),
        counter_bits=4,
        overflow=OverflowPolicy.WRAP,
    )
