"""UrlFactory: determinism, uniqueness, URL shape."""

from __future__ import annotations

import itertools
import re

import pytest

from repro.urlgen.faker import UrlFactory

URL_PATTERN = re.compile(r"^https?://[a-z0-9.-]+/[a-zA-Z0-9./-]*$")


def test_same_seed_same_stream():
    a = UrlFactory(seed=5).urls(20)
    b = UrlFactory(seed=5).urls(20)
    assert a == b


def test_different_seeds_differ():
    assert UrlFactory(seed=1).urls(5) != UrlFactory(seed=2).urls(5)


def test_urls_are_unique():
    urls = UrlFactory(seed=3).urls(2000)
    assert len(set(urls)) == 2000


def test_urls_look_like_urls(url_factory):
    for url in url_factory.urls(100):
        assert URL_PATTERN.match(url), url


def test_candidate_stream_is_unique_and_infinite(url_factory):
    stream = url_factory.candidate_stream()
    sample = list(itertools.islice(stream, 500))
    assert len(set(sample)) == 500


def test_candidate_stream_with_prefix(url_factory):
    stream = url_factory.candidate_stream(prefix="http://evil.example")
    for url in itertools.islice(stream, 50):
        assert url.startswith("http://evil.example/")


def test_domain_and_hostname_shapes(url_factory):
    assert re.match(r"^[a-z]+-[a-z]+\.[a-z]+$", url_factory.domain())
    hostname = url_factory.hostname()
    assert "." in hostname


def test_path_depth_control(url_factory):
    path = url_factory.path(depth=3)
    assert path.startswith("/")
    # allow for a possible file extension on the last segment
    assert len(path.split("/")) == 4


def test_slug_word_count(url_factory):
    assert len(url_factory.slug(3).split("-")) == 3
    with pytest.raises(ValueError):
        url_factory.slug(0)


def test_non_unique_urls_can_repeat_shape(url_factory):
    url = url_factory.url(unique=False)
    assert URL_PATTERN.match(url)


def test_reset_restarts_stream():
    factory = UrlFactory(seed=8)
    first = factory.urls(5)
    factory.reset(8)
    assert factory.urls(5) == first


def test_count_validation(url_factory):
    with pytest.raises(ValueError):
        url_factory.urls(-1)
    with pytest.raises(ValueError):
        url_factory.path(depth=0)


def test_candidate_batch_matches_stream():
    stream = list(itertools.islice(UrlFactory(seed=11).candidate_stream(), 300))
    assert UrlFactory(seed=11).candidate_batch(300) == stream


def test_candidate_batch_matches_stream_with_prefix():
    prefix = "http://evil.example"
    stream = list(
        itertools.islice(UrlFactory(seed=11).candidate_stream(prefix=prefix), 100)
    )
    batch = UrlFactory(seed=11).candidate_batch(100, prefix=prefix)
    assert batch == stream
    assert all(url.startswith("http://evil.example/") for url in batch)


def test_candidate_batch_interleaves_with_live_stream():
    """Scalar and batched pulls on one factory form a single sequential
    stream -- the contract the crafting engine's carry logic rests on."""
    reference = list(itertools.islice(UrlFactory(seed=11).candidate_stream(), 120))
    factory = UrlFactory(seed=11)
    stream = factory.candidate_stream()
    mixed = [next(stream) for _ in range(10)]
    mixed += factory.candidate_batch(50)
    mixed += [next(stream) for _ in range(10)]
    mixed += factory.candidate_batch(50)
    assert mixed == reference
    assert len(set(mixed)) == len(mixed)


def test_candidate_batch_count_validation(url_factory):
    with pytest.raises(ValueError):
        url_factory.candidate_batch(-1)
    assert url_factory.candidate_batch(0) == []
