"""Bench: Fig. 8 -- polluting Dablooms (lambda=10, f0=0.01, r=0.9).

Times one slice-level pollution fill and prints the compound-F table
(no attack ~0.065 -> full attack, partial attacks in between).
"""

from __future__ import annotations

import random

from repro.core.dablooms import Dablooms
from repro.experiments import fig8_dablooms


def test_pollute_one_slice(benchmark):
    def pollute() -> float:
        dablooms = Dablooms(slice_capacity=1000, f0=0.01, max_slices=2)
        fig8_dablooms.oracle_pollute_slice(
            dablooms.active_slice, 1000, random.Random(1)
        )
        dablooms.record_bulk_insertions(1000)
        return dablooms.compound_fpp(current=True)

    slice_fpp = benchmark.pedantic(pollute, rounds=3, iterations=1)
    assert slice_fpp > 0.05  # far above the 0.01 design target


def test_fig8_full_table(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig8_dablooms.run(scale=0.2, seed=0), rounds=1, iterations=1
    )
    report(result)
    compound = [row[1] for row in result.rows]
    assert compound == sorted(compound)
    assert compound[0] < 0.1 < compound[-1]
