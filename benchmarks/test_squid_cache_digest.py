"""Bench: Section 7 -- Squid cache-digest pollution.

Times the probe phase against a polluted sibling digest and prints the
false-hit comparison (paper: 79% polluted vs 40% control on a 762-bit
digest; see EXPERIMENTS.md on the baseline).
"""

from __future__ import annotations

from repro.apps.squid.attack import CacheDigestAttack
from repro.experiments import squid_hits


def test_polluted_scenario(benchmark):
    attack = CacheDigestAttack(clean_urls=51, added_urls=100, probes=100, seed=5)
    result = benchmark.pedantic(
        lambda: attack.run_scenario(polluted=True), rounds=3, iterations=1
    )
    assert result.digest_bits == 762
    assert result.false_hit_rate > 0.2


def test_control_scenario(benchmark):
    attack = CacheDigestAttack(clean_urls=51, added_urls=100, probes=100, seed=5)
    result = benchmark.pedantic(
        lambda: attack.run_scenario(polluted=False), rounds=3, iterations=1
    )
    assert result.false_hit_rate < 0.2


def test_squid_full_table(benchmark, report):
    result = benchmark.pedantic(
        lambda: squid_hits.run(scale=1.0, seed=0), rounds=1, iterations=1
    )
    report(result)
    rates = {row[0]: row[5] for row in result.rows}
    assert rates["polluted"] > 2 * rates["control"]
