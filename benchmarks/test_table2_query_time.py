"""Bench: Table 2 -- time to query a filter, naive vs recycled hashing.

This is the paper's own micro-benchmark, so every row goes through
pytest-benchmark directly: one timed test per (hash, derivation) cell,
plus the printed comparison table with call counts.
"""

from __future__ import annotations

import pytest

from repro.core.bloom import BloomFilter
from repro.core.params import BloomParameters
from repro.experiments import table2_query_time
from repro.hashing.crypto import HashlibHash, HmacHash
from repro.hashing.murmur import Murmur3_32
from repro.hashing.recycling import RecyclingStrategy
from repro.hashing.salted import SaltedHashStrategy
from repro.hashing.siphash import SipHash24

PARAMS = BloomParameters.design_optimal(20_000, 2**-10)
ITEMS = [i.to_bytes(32, "big") for i in range(64)]

CELLS = {
    "murmur32-naive": SaltedHashStrategy(Murmur3_32(0)),
    "sha1-naive": SaltedHashStrategy(HashlibHash("sha1")),
    "sha1-recycled": RecyclingStrategy(HashlibHash("sha1")),
    "sha256-naive": SaltedHashStrategy(HashlibHash("sha256")),
    "sha256-recycled": RecyclingStrategy(HashlibHash("sha256")),
    "sha512-naive": SaltedHashStrategy(HashlibHash("sha512")),
    "sha512-recycled": RecyclingStrategy(HashlibHash("sha512")),
    "hmac-sha1-naive": SaltedHashStrategy(HmacHash(bytes(16), "sha1")),
    "hmac-sha1-recycled": RecyclingStrategy(HmacHash(bytes(16), "sha1")),
    "siphash-naive": SaltedHashStrategy(SipHash24(bytes(16))),
    "siphash-recycled": RecyclingStrategy(SipHash24(bytes(16))),
}


@pytest.mark.parametrize("cell", CELLS, ids=list(CELLS))
def test_query_time(benchmark, cell):
    strategy = CELLS[cell]
    target = BloomFilter(PARAMS.m, PARAMS.k, strategy)
    for item in ITEMS[:32]:
        target.add(item)

    def query_batch() -> int:
        return sum(1 for item in ITEMS if item in target)

    hits = benchmark(query_batch)
    assert hits >= 32  # the inserted half always answers present


def test_table2_full_table(benchmark, report):
    result = benchmark.pedantic(
        lambda: table2_query_time.run(scale=0.3, seed=0), rounds=1, iterations=1
    )
    report(result)
    for row in result.rows:
        if row[3] != "-":
            assert row[3] < row[1]  # recycled always beats naive
