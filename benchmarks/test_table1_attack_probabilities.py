"""Bench: Table 1 -- attack success probabilities.

Times the Monte-Carlo estimator that cross-checks the closed forms, and
prints the symbolic+numeric table.
"""

from __future__ import annotations

import random

from repro.experiments import table1_probabilities


def test_monte_carlo_rates(benchmark):
    pollution, forgery = benchmark(
        lambda: table1_probabilities.monte_carlo_rates(
            3200, 4, 1600, trials=20_000, rng=random.Random(1)
        )
    )
    # At W = m/2 both attacks succeed about (1/2)^4 of the time.
    assert abs(forgery - 0.0625) < 0.01
    assert abs(pollution - 0.0623) < 0.01


def test_table1_full_table(benchmark, report):
    result = benchmark.pedantic(
        lambda: table1_probabilities.run(scale=0.5, seed=0), rounds=1, iterations=1
    )
    report(result)
    assert len(result.rows) == 9
