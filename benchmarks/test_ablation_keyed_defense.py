"""Ablation: keyed hashing as the universal countermeasure.

Times keyed vs unkeyed query paths and prints the attack-degradation
table: with the key unknown, the attacker's crafted pollution behaves
exactly like random insertions (weight tracks the uniform expectation,
not nk).
"""

from __future__ import annotations

import math

import pytest

from repro.adversary.pollution import PollutionAttack
from repro.core.bloom import BloomFilter
from repro.countermeasures.keyed import KeyedBloomFilter
from repro.experiments.runner import ExperimentResult
from repro.urlgen.faker import UrlFactory

M, K, N = 3200, 4, 400


@pytest.mark.parametrize("mode", ["unkeyed-sha512", "keyed-siphash", "keyed-hmac-sha1"])
def test_query_cost_of_keying(benchmark, mode):
    if mode == "unkeyed-sha512":
        target = BloomFilter(M, K)
    elif mode == "keyed-siphash":
        target = KeyedBloomFilter(M, K, key=bytes(16), mac="siphash")
    else:
        target = KeyedBloomFilter(M, K, key=bytes(16), mac="hmac-sha1")
    items = UrlFactory(seed=2).urls(64)
    for item in items[:32]:
        target.add(item)

    hits = benchmark(lambda: sum(1 for item in items if item in target))
    assert hits >= 32


def test_keying_degrades_crafted_pollution(benchmark, report):
    def run_attack() -> tuple[int, int]:
        shadow = BloomFilter(M, K)  # attacker's model (no key)
        keyed = KeyedBloomFilter(M, K, key=bytes(range(16)))
        items = PollutionAttack(shadow, seed=4).run(N).items
        for item in items:
            keyed.add(item)
        return shadow.hamming_weight, keyed.hamming_weight

    shadow_weight, keyed_weight = benchmark.pedantic(run_attack, rounds=1, iterations=1)
    expected_random = M * (1 - math.exp(-N * K / M))

    result = ExperimentResult(
        experiment_id="ablation-keyed",
        title="Keyed-hash ablation: the same crafted items, two filters",
        paper_claim="without the key, crafting degrades to blind guessing",
        headers=["filter", "weight after 400 crafted inserts", "model"],
    )
    result.add_row("unkeyed (attacker's geometry)", shadow_weight, f"nk = {N * K}")
    result.add_row("keyed (real deployment)", keyed_weight, f"uniform ~ {expected_random:.0f}")
    report(result)

    assert shadow_weight == N * K
    assert abs(keyed_weight - expected_random) < 0.05 * M
