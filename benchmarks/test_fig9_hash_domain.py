"""Bench: Fig. 9 -- domain of application of hash functions.

Times single-call index derivation at the edge of SHA-512's envelope
and prints the digest-demand grid (one SHA-512 call covers f >= 2^-15
up to 1 GByte).
"""

from __future__ import annotations

import pytest

from repro.experiments import fig9_hash_domain
from repro.hashing.crypto import SHA512
from repro.hashing.recycling import RecyclingStrategy


@pytest.mark.parametrize("k,m", [(5, 8 * 2**30), (15, 8 * 2**30), (20, 8 * 2**30)],
                         ids=["f=2^-5@1GB", "f=2^-15@1GB", "f=2^-20@1GB"])
def test_index_derivation_at_1gb(benchmark, k, m):
    strategy = RecyclingStrategy(SHA512())
    indexes = benchmark(lambda: strategy.indexes(b"http://example.com/page", k, m))
    assert len(indexes) == k


def test_fig9_full_table(benchmark, report):
    result = benchmark.pedantic(lambda: fig9_hash_domain.run(), rounds=3, iterations=1)
    report(result)
    sha512_calls = [row[7] for row in result.rows]  # last column
    assert max(sha512_calls[:18]) == 1  # f >= 2^-15: always one call
    assert max(sha512_calls[18:]) == 2  # f = 2^-20: two calls
