"""Bench (extension): two choices vs evil choices.

Answers the paper's closing question for its title's namesake: the
Lumetta-Mitzenmacher two-choice filter improves the *average* case but
has a strictly *worse* worst case than the classic filter.  Times both
insertion paths and prints the average/worst-case comparison.
"""

from __future__ import annotations

import pytest

from repro.adversary.pollution import PollutionAttack
from repro.adversary.two_choice_attack import TwoChoicePollutionAttack
from repro.core.bloom import BloomFilter
from repro.core.two_choice import TwoChoiceBloomFilter
from repro.experiments.runner import ExperimentResult
from repro.urlgen.faker import UrlFactory

# k >= 8 is where the two-choice average-case win materialises (below
# that, the query-side OR outweighs the weight saving).
M, K, N = 8192, 8, 700
N_CRAFTED = 300


@pytest.mark.parametrize("variant", ["classic", "two-choice"])
def test_honest_insert_throughput(benchmark, variant):
    urls = UrlFactory(seed=1).urls(300)

    def insert_batch() -> int:
        target = BloomFilter(M, K) if variant == "classic" else TwoChoiceBloomFilter(M, K)
        for url in urls:
            target.add(url)
        return target.hamming_weight

    weight = benchmark(insert_batch)
    assert weight > 0


def test_two_choice_comparison_table(benchmark, report):
    def compare() -> dict[str, float]:
        classic = BloomFilter(M, K)
        two_choice = TwoChoiceBloomFilter(M, K)
        for url in UrlFactory(seed=2).urls(N):
            classic.add(url)
        for url in UrlFactory(seed=2).urls(N):
            two_choice.add(url)
        honest = {
            "classic_weight": classic.hamming_weight,
            "two_choice_weight": two_choice.hamming_weight,
            "classic_fpp": classic.current_fpp(),
            "two_choice_fpp": two_choice.current_fpp(),
        }

        classic_attacked = BloomFilter(M, K)
        PollutionAttack(classic_attacked, seed=3).run(N_CRAFTED)
        tc_attacked = TwoChoiceBloomFilter(M, K)
        TwoChoicePollutionAttack(tc_attacked, seed=3).run(N_CRAFTED)
        honest["classic_forced"] = classic_attacked.current_fpp()
        honest["two_choice_forced"] = tc_attacked.current_fpp()
        return honest

    data = benchmark.pedantic(compare, rounds=1, iterations=1)

    result = ExperimentResult(
        experiment_id="ext-two-choice",
        title=f"Two choices vs evil choices (m={M}, k={K})",
        paper_claim="variants trading average case for worst case: two-choice "
        "wins honest workloads, loses adversarial ones",
        headers=["metric", "classic", "two-choice"],
    )
    result.add_row(
        f"weight after {N} honest inserts", data["classic_weight"], data["two_choice_weight"]
    )
    result.add_row("honest FP", data["classic_fpp"], data["two_choice_fpp"])
    result.add_row(
        f"FP forced by {N_CRAFTED} crafted inserts",
        data["classic_forced"],
        data["two_choice_forced"],
    )
    report(result)

    assert data["two_choice_weight"] < data["classic_weight"]  # average-case win
    assert data["two_choice_fpp"] < data["classic_fpp"]  # honest FP win at k=8
    assert data["two_choice_forced"] > data["classic_forced"]  # worst-case loss
