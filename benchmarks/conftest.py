"""Shared helpers for the benchmark harness.

Every module regenerates one paper table/figure: the timed kernel goes
through pytest-benchmark, and the paper's rows/series are printed
through :func:`report` (bypassing capture so they land in
``bench_output.txt``).
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentResult


@pytest.fixture
def report(capsys):
    """Print an ExperimentResult (or free-form text) to the real stdout."""

    def _print(result: ExperimentResult | str) -> None:
        text = result if isinstance(result, str) else result.render()
        with capsys.disabled():
            print()
            print(text)

    return _print
