"""Bench (extension): adversarial probabilistic counting (paper §10).

Times honest HLL insertion against constant-time forged-key insertion
and prints the inflation/evasion summary table.
"""

from __future__ import annotations

from repro.counting import HllEvasionAttack, HllInflationAttack, HyperLogLog
from repro.experiments.runner import ExperimentResult
from repro.urlgen.faker import UrlFactory


def test_honest_insert_throughput(benchmark):
    urls = UrlFactory(seed=1).urls(500)

    def insert_batch() -> float:
        hll = HyperLogLog(p=10)
        for url in urls:
            hll.add(url)
        return hll.estimate()

    estimate = benchmark(insert_batch)
    assert 350 < estimate < 700


def test_forged_key_cost_is_constant_time(benchmark):
    attack = HllInflationAttack(HyperLogLog(p=10))
    key = benchmark(lambda: attack.forge_key(register=7, rho_value=40))
    assert attack.target.placement(key) == (7, 40)


def test_cardinality_attack_table(benchmark, report):
    def run_attacks() -> tuple[float, float]:
        inflated = HyperLogLog(p=10)
        for url in UrlFactory(seed=2).urls(200):
            inflated.add(url)
        inflation = HllInflationAttack(inflated).run()
        evaded = HyperLogLog(p=10)
        evasion = HllEvasionAttack(evaded).run(5_000)
        return inflation.estimate_after, evasion.estimate_after

    inflated_estimate, evaded_estimate = benchmark.pedantic(
        run_attacks, rounds=1, iterations=1
    )

    result = ExperimentResult(
        experiment_id="ext-counting",
        title="Adversarial HyperLogLog (p=10): the paper's Section 10 extension",
        paper_claim="probabilistic counters inherit the Bloom adversary models",
        headers=["scenario", "true distinct items", "reported estimate"],
    )
    result.add_row("honest", 200, "~200")
    result.add_row("inflation (1024 forged)", 200 + 1024, f"{inflated_estimate:.3g}")
    result.add_row("evasion (5000 forged)", 5000, round(evaded_estimate, 1))
    report(result)

    assert inflated_estimate > 1e12
    assert evaded_estimate < 5
