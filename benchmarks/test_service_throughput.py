"""Bench: the service hot path -- batched vs scalar filter operations,
and the gateway end to end.

Not a paper artifact: this guards the batch API that makes the
:mod:`repro.service` gateway worth fronting filters with.  The headline
check is ``contains_batch`` beating the scalar query loop on a 10k-item
batch; the replay benchmark times the full sharded gateway under the
mixed honest+adversarial workload.
"""

from __future__ import annotations

import time

import pytest

from repro.core.bloom import BloomFilter
from repro.experiments.runner import render_table
from repro.service import HashShardPicker, MembershipGateway, SaturationGuard
from repro.service.driver import AdversarialTrafficDriver
from repro.urlgen.faker import UrlFactory

BATCH_10K = UrlFactory(seed=0xBEEF).urls(10_000)
M, K = 65_536, 4


def _half_full_filter() -> BloomFilter:
    target = BloomFilter(M, K)
    target.add_batch(BATCH_10K[:5_000])
    return target


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_contains_scalar_10k(benchmark):
    target = _half_full_filter()
    hits = benchmark(lambda: sum(1 for item in BATCH_10K if item in target))
    assert hits >= 5_000


def test_contains_batch_10k(benchmark):
    target = _half_full_filter()
    hits = benchmark(lambda: sum(target.contains_batch(BATCH_10K)))
    assert hits >= 5_000


def test_add_batch_10k(benchmark):
    def build() -> int:
        target = BloomFilter(M, K)
        target.add_batch(BATCH_10K)
        return target.hamming_weight

    weight = benchmark(build)
    assert weight > 0


def test_batch_beats_scalar_on_10k(report):
    """The acceptance check: vectorized batch ops beat the scalar loop."""
    target = _half_full_filter()
    scalar_q = _best_of(lambda: [item in target for item in BATCH_10K])
    batch_q = _best_of(lambda: target.contains_batch(BATCH_10K))
    assert target.contains_batch(BATCH_10K) == [item in target for item in BATCH_10K]

    def scalar_add() -> None:
        fresh = BloomFilter(M, K)
        for item in BATCH_10K:
            fresh.add(item)

    def batch_add() -> None:
        BloomFilter(M, K).add_batch(BATCH_10K)

    scalar_a = _best_of(scalar_add)
    batch_a = _best_of(batch_add)

    report(
        "service hot path, 10k items (best of 3):\n"
        + render_table(
            ["op", "scalar_us/item", "batch_us/item", "speedup"],
            [
                ["contains", scalar_q * 100, batch_q * 100, scalar_q / batch_q],
                ["add", scalar_a * 100, batch_a * 100, scalar_a / batch_a],
            ],
        )
    )
    assert batch_q < scalar_q, "contains_batch must beat the scalar query loop"
    assert batch_a < scalar_a, "add_batch must beat the scalar insert loop"


def test_gateway_replay(benchmark, report):
    """Time the full gateway under the mixed honest+adversarial replay."""
    import asyncio

    def replay_once():
        gateway = MembershipGateway(
            lambda: BloomFilter(1024, 4),
            shards=4,
            picker=HashShardPicker(),
            guard=SaturationGuard(0.4),
        )
        driver = AdversarialTrafficDriver(gateway, seed=3, max_trials=50_000)
        return asyncio.run(
            driver.run(
                honest_clients=2,
                honest_inserts=200,
                honest_queries=200,
                pollution_inserts=120,
                ghost_queries=16,
                ghost_min_fill=0.15,
                probe_queries=200,
            )
        )

    result = benchmark.pedantic(replay_once, rounds=1, iterations=1)
    report(
        f"gateway replay: {result.operations} ops at "
        f"{result.throughput:,.0f} ops/s, {result.rotations} rotation(s), "
        f"ghosts {result.ghost_hits}/{result.ghost_queries}, "
        f"amplification x{result.amplification:,.0f}"
    )
    assert result.rotations >= 1, "aimed pollution should force a rotation"
    assert result.ghost_hit_rate > result.honest_fp_rate