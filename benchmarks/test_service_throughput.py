"""Bench: the service hot path -- batched vs scalar filter operations,
the gateway end to end, and the serving stack's transports side by side.

Not a paper artifact: this guards the batch API that makes the
:mod:`repro.service` gateway worth fronting filters with.  The headline
check is ``contains_batch`` beating the scalar query loop on a 10k-item
batch; the replay benchmark times the full sharded gateway under the
mixed honest+adversarial workload; the transport benchmark replays one
honest workload in-process, over TCP against the local backend, and over
TCP against the process-pool backend, so the cost of each serving layer
stays visible.
"""

from __future__ import annotations

import asyncio
import os
import time
from functools import partial

import pytest

from repro.core.bloom import BloomFilter
from repro.experiments.runner import render_table
from repro.service import (
    AdaptivePositiveRatePolicy,
    AdversarialTrafficDriver,
    FillThresholdPolicy,
    HashShardPicker,
    LocalBackend,
    MembershipClient,
    MembershipGateway,
    MembershipServer,
    ProcessPoolBackend,
    RotateOnRestorePolicy,
    SaturationGuard,
    TimeBasedRecyclingPolicy,
)
from repro.urlgen.faker import UrlFactory

BATCH_10K = UrlFactory(seed=0xBEEF).urls(10_000)
M, K = 65_536, 4


def _half_full_filter() -> BloomFilter:
    target = BloomFilter(M, K)
    target.add_batch(BATCH_10K[:5_000])
    return target


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_contains_scalar_10k(benchmark):
    target = _half_full_filter()
    hits = benchmark(lambda: sum(1 for item in BATCH_10K if item in target))
    assert hits >= 5_000


def test_contains_batch_10k(benchmark):
    target = _half_full_filter()
    hits = benchmark(lambda: sum(target.contains_batch(BATCH_10K)))
    assert hits >= 5_000


def test_add_batch_10k(benchmark):
    def build() -> int:
        target = BloomFilter(M, K)
        target.add_batch(BATCH_10K)
        return target.hamming_weight

    weight = benchmark(build)
    assert weight > 0


def test_batch_beats_scalar_on_10k(report):
    """The acceptance check: vectorized batch ops beat the scalar loop."""
    target = _half_full_filter()
    scalar_q = _best_of(lambda: [item in target for item in BATCH_10K])
    batch_q = _best_of(lambda: target.contains_batch(BATCH_10K))
    assert target.contains_batch(BATCH_10K) == [item in target for item in BATCH_10K]

    def scalar_add() -> None:
        fresh = BloomFilter(M, K)
        for item in BATCH_10K:
            fresh.add(item)

    def batch_add() -> None:
        BloomFilter(M, K).add_batch(BATCH_10K)

    scalar_a = _best_of(scalar_add)
    batch_a = _best_of(batch_add)

    report(
        "service hot path, 10k items (best of 3):\n"
        + render_table(
            ["op", "scalar_us/item", "batch_us/item", "speedup"],
            [
                ["contains", scalar_q * 100, batch_q * 100, scalar_q / batch_q],
                ["add", scalar_a * 100, batch_a * 100, scalar_a / batch_a],
            ],
        )
    )
    assert batch_q < scalar_q, "contains_batch must beat the scalar query loop"
    assert batch_a < scalar_a, "add_batch must beat the scalar insert loop"


def test_gateway_replay(benchmark, report):
    """Time the full gateway under the mixed honest+adversarial replay."""

    def replay_once():
        gateway = MembershipGateway(
            lambda: BloomFilter(1024, 4),
            shards=4,
            picker=HashShardPicker(),
            guard=SaturationGuard(0.4),
        )
        driver = AdversarialTrafficDriver(gateway, seed=3, max_trials=50_000)
        return asyncio.run(
            driver.run(
                honest_clients=2,
                honest_inserts=200,
                honest_queries=200,
                pollution_inserts=120,
                ghost_queries=16,
                ghost_min_fill=0.15,
                probe_queries=200,
            )
        )

    result = benchmark.pedantic(replay_once, rounds=1, iterations=1)
    report(
        f"gateway replay: {result.operations} ops at "
        f"{result.throughput:,.0f} ops/s, {result.rotations} rotation(s), "
        f"ghosts {result.ghost_hits}/{result.ghost_queries}, "
        f"amplification x{result.amplification:,.0f}"
    )
    assert result.rotations >= 1, "aimed pollution should force a rotation"
    assert result.ghost_hit_rate > result.honest_fp_rate


def _shard_1024() -> BloomFilter:
    return BloomFilter(1024, 4)


HONEST_WORKLOAD = dict(
    honest_clients=3,
    honest_inserts=300,
    honest_queries=300,
    batch=16,
    pollution_inserts=0,
    ghost_queries=0,
    probe_queries=100,
)


def _replay_inproc():
    gateway = MembershipGateway(_shard_1024, shards=4, picker=HashShardPicker())
    driver = AdversarialTrafficDriver(gateway, seed=17)
    return asyncio.run(driver.run(**HONEST_WORKLOAD))


def _replay_tcp(backend_kind: str):
    factory = partial(BloomFilter, 1024, 4)
    backend = (
        ProcessPoolBackend(factory, 4)
        if backend_kind == "procpool"
        else LocalBackend(factory, 4)
    )
    gateway = MembershipGateway(factory, backend=backend, picker=HashShardPicker())

    async def scenario():
        async with MembershipServer(gateway) as server:
            client = MembershipClient(*server.address)
            driver = AdversarialTrafficDriver(gateway, seed=17, transport=client)
            result = await driver.run(**HONEST_WORKLOAD)
            await client.aclose()
            return result

    try:
        return asyncio.run(scenario())
    finally:
        gateway.close()


def _replay_with_policy(policy):
    gateway = MembershipGateway(
        _shard_1024, shards=4, picker=HashShardPicker(), policy=policy
    )
    driver = AdversarialTrafficDriver(gateway, seed=17)
    return asyncio.run(driver.run(**HONEST_WORKLOAD))


def test_policy_evaluation_overhead(report):
    """Per-batch policy evaluation must stay invisible on the hot path.

    The PR 2 baseline is the guard-free gateway (no rotation decision at
    all); each lifecycle policy replays the identical honest workload,
    with rotation thresholds set out of reach so the comparison measures
    pure decision overhead, not rotation work.
    """
    baseline = _replay_inproc()  # no policy at all (PR 2 behaviour)
    policies = [
        ("fill", FillThresholdPolicy(0.99)),
        ("age", TimeBasedRecyclingPolicy(10_000_000)),
        ("adaptive", AdaptivePositiveRatePolicy(0.999, min_queries=10_000_000)),
        ("restore+fill", RotateOnRestorePolicy(10_000_000, FillThresholdPolicy(0.99))),
    ]
    rows = [["none (baseline)", baseline.operations, baseline.throughput, 1.0]]
    reports = []
    for name, policy in policies:
        outcome = _replay_with_policy(policy)
        reports.append(outcome)
        rows.append(
            [
                name,
                outcome.operations,
                outcome.throughput,
                baseline.throughput / outcome.throughput,
            ]
        )
    report(
        "policy-evaluation overhead, honest workload (600 ops + probe):\n"
        + render_table(["policy", "ops", "ops/s", "slowdown_vs_none"], rows)
    )
    for outcome in reports:
        # Identical work (the policy must not change behaviour) ...
        assert outcome.operations == baseline.operations
        assert outcome.rotations == 0
        assert outcome.honest_fp_rate == baseline.honest_fp_rate
        # ... at a cost far below the serving noise floor (generous
        # bound: decision code is a few comparisons per *batch*).
        assert outcome.throughput > baseline.throughput / 3


def test_transport_overhead(report):
    """One honest workload across the three serving configurations.

    Counts must be identical (the transport must not change behaviour);
    throughput shows what each layer costs.
    """
    inproc = _replay_inproc()
    tcp_local = _replay_tcp("local")
    tcp_pool = _replay_tcp("procpool")
    rows = [
        ["inproc", inproc.operations, inproc.throughput, inproc.honest_fp_rate],
        ["tcp-local", tcp_local.operations, tcp_local.throughput, tcp_local.honest_fp_rate],
        ["tcp-procpool", tcp_pool.operations, tcp_pool.throughput, tcp_pool.honest_fp_rate],
    ]
    report(
        "transports, honest workload (600 ops + probe):\n"
        + render_table(["transport", "ops", "ops/s", "honest_fp"], rows)
    )
    # The transport changes the cost of serving, never the answers.
    assert inproc.operations == tcp_local.operations == tcp_pool.operations
    assert (
        inproc.honest_fp_rate
        == tcp_local.honest_fp_rate
        == tcp_pool.honest_fp_rate
    )
    assert min(r.throughput for r in (inproc, tcp_local, tcp_pool)) > 0

# ----------------------------------------------------------------------
# Multi-core speedup curve (ROADMAP: ProcessPool shard parallelism)
# ----------------------------------------------------------------------

def _concurrent_backend_ops(backend, shards: int, batch: int, per_shard: int):
    """Feed every shard its own insert+query stream concurrently.

    One asyncio task per shard keeps a batch in flight on that shard at
    all times -- the arrangement where a process backend's per-shard
    workers genuinely hash in parallel -- and returns total operations.
    """
    streams = [
        UrlFactory(seed=0xC0DE + shard).urls(per_shard) for shard in range(shards)
    ]

    async def drive(shard: int) -> int:
        done = 0
        urls = streams[shard]
        for start in range(0, per_shard, batch):
            chunk = urls[start : start + batch]
            await backend.insert_batch(shard, chunk)
            await backend.query_batch(shard, chunk)
            done += 2 * len(chunk)
        return done

    async def run() -> int:
        return sum(await asyncio.gather(*(drive(s) for s in range(shards))))

    start = time.perf_counter()
    operations = asyncio.run(run())
    return operations, time.perf_counter() - start


def _speedup_point(shards: int, batch: int, per_shard: int):
    """(local_ops_per_s, pool_ops_per_s) for one curve point."""
    factory = partial(BloomFilter, 65_536, 4)
    local = LocalBackend(factory, shards)
    ops, local_s = _concurrent_backend_ops(local, shards, batch, per_shard)
    with ProcessPoolBackend(factory, shards) as pool:
        pool_ops, pool_s = _concurrent_backend_ops(pool, shards, batch, per_shard)
    assert pool_ops == ops
    return ops / local_s, ops / pool_s


def test_multicore_speedup_curve(report):
    """Record the ProcessPool shard-count x batch-size speedup curve.

    The pool pays a pipe round trip per batch; it wins only when the
    per-batch hashing work (batch size) is large enough to amortise it
    and there is a core per shard to hash on.  This curve is the
    ROADMAP's multi-core calibration: where the sweet spot sits on this
    host.  On a single-core runner there is no parallelism to measure
    -- the test skips with the explanation, and the pool's *overhead*
    stays tracked by test_transport_overhead.
    """
    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(
            "multi-core speedup needs >= 2 cores (single-core runner: the "
            "ProcessPool can only show overhead here, which "
            "test_transport_overhead already tracks); run on a multi-core "
            "host to record the shard-count x batch-size curve"
        )
    per_shard = 4_096
    rows = []
    best = 0.0
    for shards in sorted({2, min(4, cores)}):
        for batch in (64, 256, 1024):
            local_rate, pool_rate = _speedup_point(shards, batch, per_shard)
            speedup = pool_rate / local_rate
            best = max(best, speedup)
            rows.append([shards, batch, local_rate, pool_rate, speedup])
    report(
        f"ProcessPool speedup curve ({cores} cores, {per_shard} ops/shard):\n"
        + render_table(
            ["shards", "batch", "local_ops/s", "pool_ops/s", "speedup"], rows
        )
    )
    # Not a parallel-efficiency claim (CI neighbours are noisy): the
    # floor only catches a pathological pool (e.g. serialised workers).
    assert best > 0.5, (
        f"best ProcessPool speedup {best:.2f}x is below the sanity floor; "
        "the pool appears pathologically serialised on this multi-core host"
    )
