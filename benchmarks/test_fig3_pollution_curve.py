"""Bench: Fig. 3 -- FP probability vs inserted items (m=3200, k=4).

Times the full adversarial insertion campaign (600 crafted items) and
prints the honest/adversarial/partial curves with the paper's threshold
crossings (600 / 422 / 510) and f_adv(600) = 0.316.
"""

from __future__ import annotations

from repro.adversary.pollution import PollutionAttack
from repro.core.bloom import BloomFilter
from repro.experiments import fig3_false_positive


def test_fig3_adversarial_campaign(benchmark, report):
    def campaign() -> float:
        target = BloomFilter(3200, 4)
        PollutionAttack(target, seed=3).run(600)
        return target.current_fpp()

    final_fpp = benchmark.pedantic(campaign, rounds=3, iterations=1)
    assert 0.30 <= final_fpp <= 0.33  # paper: 0.316

    report(fig3_false_positive.run(scale=1.0, seed=0))
