"""Bench: Fig. 6 -- cost of creating ghost URLs vs filter occupation.

Times single-ghost forgery at high/low occupation (f = 2^-5) and prints
the occupation/cost grid for both paper curves.
"""

from __future__ import annotations

import pytest

from repro.adversary.query import GhostForgery
from repro.core.bloom import BloomFilter
from repro.core.params import BloomParameters
from repro.experiments import fig6_ghost_cost
from repro.urlgen.faker import UrlFactory


def _filled_filter(occupation: float, capacity: int = 1500) -> BloomFilter:
    params = BloomParameters.design_optimal(capacity, 2**-5)
    target = BloomFilter(params.m, params.k)
    factory = UrlFactory(seed=9)
    for _ in range(int(occupation * capacity)):
        target.add(factory.url())
    return target


@pytest.mark.parametrize("occupation", [0.4, 0.7, 1.0])
def test_ghost_forgery_cost(benchmark, occupation):
    target = _filled_filter(occupation)
    forgery = GhostForgery(
        target, candidates=UrlFactory(seed=11).candidate_stream(), max_trials=5_000_000
    )
    ghost = benchmark.pedantic(forgery.craft_one, rounds=3, iterations=1)
    assert ghost.item in target


def test_fig6_full_table(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig6_ghost_cost.run(scale=0.3, seed=0), rounds=1, iterations=1
    )
    report(result)
    # Expected trials fall monotonically with occupation for each curve.
    for prefix in ("2^-5", "2^-10"):
        series = [row[3] for row in result.rows if row[0] == prefix]
        assert series == sorted(series, reverse=True)
