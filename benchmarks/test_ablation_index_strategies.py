"""Ablation: index-derivation strategy (salted vs KM vs recycling).

DESIGN.md calls this out: Kirsch-Mitzenmacher and recycling trade
hash-call count against independence, but none of them changes the
*attack* cost -- crafting probability depends only on (m, k, W).  The
bench times insertion under each strategy and prints both the call
counts and the measured crafting trials, which should match across
strategies.
"""

from __future__ import annotations

import pytest

from repro.adversary.pollution import PollutionAttack
from repro.core.bloom import BloomFilter
from repro.experiments.runner import ExperimentResult
from repro.hashing.crypto import SHA512
from repro.hashing.kirsch_mitzenmacher import KirschMitzenmacherStrategy
from repro.hashing.recycling import RecyclingStrategy
from repro.hashing.salted import SaltedHashStrategy
from repro.urlgen.faker import UrlFactory

STRATEGIES = {
    "salted-sha512": lambda: SaltedHashStrategy(SHA512()),
    "km-murmur128": lambda: KirschMitzenmacherStrategy(),
    "recycled-sha512": lambda: RecyclingStrategy(SHA512()),
}

M, K = 3200, 4


@pytest.mark.parametrize("name", STRATEGIES, ids=list(STRATEGIES))
def test_insert_throughput(benchmark, name):
    strategy = STRATEGIES[name]()
    items = UrlFactory(seed=1).urls(200)

    def insert_batch() -> int:
        target = BloomFilter(M, K, strategy)
        for item in items:
            target.add(item)
        return target.hamming_weight

    weight = benchmark(insert_batch)
    assert weight > 0


def test_attack_cost_is_strategy_independent(benchmark, report):
    """Crafting trials per polluting item match across strategies."""

    def measure() -> dict[str, float]:
        trials: dict[str, float] = {}
        for name, factory in STRATEGIES.items():
            target = BloomFilter(M, K, factory())
            attack = PollutionAttack(
                target, candidates=UrlFactory(seed=7).candidate_stream()
            )
            rep = attack.run(150)
            trials[name] = rep.total_trials / 150
        return trials

    trials = benchmark.pedantic(measure, rounds=1, iterations=1)

    result = ExperimentResult(
        experiment_id="ablation-strategies",
        title="Index strategy ablation: defence cost vs attack cost",
        paper_claim="hash-call savings do not change crafting difficulty",
        headers=["strategy", "hash calls/op", "mean crafting trials/item"],
    )
    for name, factory in STRATEGIES.items():
        result.add_row(name, factory().hash_calls(K, M), round(trials[name], 2))
    report(result)

    values = list(trials.values())
    # Same (m, k) geometry -> same acceptance probability (within noise).
    assert max(values) < 1.8 * min(values)
