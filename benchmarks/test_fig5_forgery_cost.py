"""Bench: Fig. 5 -- cost of creating polluting URLs.

Times per-URL forgery against filters parameterised for
f in {2^-5, ..., 2^-20} and prints the full cost table (the paper's
38 s -> 2 h exponential growth, at laptop scale).
"""

from __future__ import annotations

import pytest

from repro.adversary.pollution import PollutionAttack
from repro.core.bloom import BloomFilter
from repro.core.params import BloomParameters
from repro.experiments import fig5_pollution_cost
from repro.urlgen.faker import UrlFactory

FPPS = [2**-5, 2**-10, 2**-15, 2**-20]


@pytest.mark.parametrize("f", FPPS, ids=lambda f: f"f=2^-{round(-__import__('math').log2(f))}")
def test_forge_100_polluting_urls(benchmark, f):
    params = BloomParameters.design_optimal(400, f)

    def forge() -> int:
        target = BloomFilter(params.m, params.k)
        attack = PollutionAttack(
            target, candidates=UrlFactory(seed=params.k).candidate_stream()
        )
        return attack.run(100).total_trials

    trials = benchmark.pedantic(forge, rounds=3, iterations=1)
    assert trials >= 100


def test_fig5_full_table(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig5_pollution_cost.run(scale=0.4, seed=0), rounds=1, iterations=1
    )
    report(result)
    times = [row[6] for row in result.rows]
    assert times[-1] > times[0]  # exponential growth direction
