"""Ablation: worst-case parameters (k_adv) vs classical optimum (k_opt).

Times the pollution campaign under both designs and prints the Section
8.1 comparison: the hardened design halves hashing work and caps the
adversary at e^(-m/(en)), for a 1.05^(m/n) honest-FP penalty.
"""

from __future__ import annotations

import pytest

from repro.adversary.pollution import PollutionAttack
from repro.core.bloom import BloomFilter
from repro.countermeasures.worst_case import compare_designs
from repro.experiments import worst_case_params
from repro.urlgen.faker import UrlFactory

M, N = 3200, 600


@pytest.mark.parametrize("design", ["optimal-k4", "worst-case-k2"])
def test_pollution_campaign_cost(benchmark, design):
    k = 4 if design == "optimal-k4" else 2

    def campaign() -> float:
        target = BloomFilter(M, k)
        PollutionAttack(
            target, candidates=UrlFactory(seed=k).candidate_stream()
        ).run(N)
        return target.current_fpp()

    fpp = benchmark.pedantic(campaign, rounds=2, iterations=1)
    if design == "optimal-k4":
        assert fpp == pytest.approx(0.316, abs=0.01)
    else:
        assert fpp == pytest.approx(0.1406, abs=0.01)


def test_worst_case_full_table(benchmark, report):
    result = benchmark.pedantic(
        lambda: worst_case_params.run(scale=1.0, seed=0), rounds=1, iterations=1
    )
    report(result)
    cmp = compare_designs(M, N)
    assert cmp.adversarial_gain > 2.0
    assert cmp.hash_call_savings == 2.0
