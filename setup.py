"""Shim for legacy editable installs (`pip install -e .`).

All metadata lives in pyproject.toml's [project] table (setuptools>=61
reads it); this file exists so environments without the `wheel` package
or network access for build isolation can still do an editable install.
"""

from setuptools import setup

setup()
