#!/usr/bin/env python3
"""The membership service under attack, end to end.

Boots the sharded asyncio gateway (``repro.service``), replays a mixed
honest + pollution + ghost-query workload through the adversarial
traffic driver, and prints the per-shard stats.  Four acts:

  1. public routing -- the adversary aims every crafted item at shard 0,
     saturates it, and the saturation guard rotates it mid-run;
  2. the same attack against a rate-limited gateway -- the attacker's
     insert budget collapses;
  3. keyed routing -- the adversary can no longer aim, pollution sprays
     across shards, and the target shard stays healthy;
  4. the full serving stack -- the same attack over TCP against a
     process-pool backend (one worker per shard), then a snapshot,
     a simulated restart, and proof the warm gateway answers
     identically;
  5. the lifecycle layer -- the same attack under an *adaptive* rotation
     policy (rotate on the ghost storm's positive-rate spike), then a
     warm restart under rotate-on-restore, which expires the restored
     shards on their post-restore op budget;
  6. the defence algebra -- a composed policy,
     ``cooldown:150(adaptive:0.6:32)&fill:0.2``, live: rotate on the
     ghost storm's signature only once the filter holds enough state to
     be worth invalidating, and never twice within 150 operations (the
     refused rotations land in the ``suppressed`` telemetry column);
  7. the cluster tier -- three gateways share an 8-shard space over a
     consistent-hash ring with a *keyed* item router, the same aimed
     attack sprays instead of concentrating, and a shard is rebalanced
     to another node mid-attack by byte-exact snapshot handoff while a
     stale client follows ``NOT_OWNER`` redirects without losing a
     single insert.

Run: ``python examples/membership_service.py``
"""

from __future__ import annotations

import asyncio
from functools import partial

from repro.core import BloomFilter
from repro.service import (
    AdversarialTrafficDriver,
    ClientRateLimiter,
    ClusterHarness,
    HashShardPicker,
    KeyedShardPicker,
    MembershipClient,
    MembershipGateway,
    MembershipServer,
    ProcessPoolBackend,
    ServiceConfig,
    parse_policy,
    restore_gateway,
    snapshot_gateway,
)
from repro.urlgen.faker import UrlFactory

SHARDS = 4
SHARD_M = 2048
SHARD_K = 4
THRESHOLD = 0.4

WORKLOAD = dict(
    honest_clients=3,
    honest_inserts=360,
    honest_queries=360,
    batch=16,
    pollution_inserts=200,
    ghost_queries=32,
    ghost_min_fill=0.25,
    target_shard=0,
    probe_queries=400,
)


def build_gateway(keyed_routing: bool = False, rate_limit: float | None = None) -> MembershipGateway:
    return MembershipGateway(
        lambda: BloomFilter(SHARD_M, SHARD_K),
        shards=SHARDS,
        picker=KeyedShardPicker() if keyed_routing else HashShardPicker(),
        policy=parse_policy(f"fill:{THRESHOLD}"),
        limiter=ClientRateLimiter(rate_limit, burst=32) if rate_limit else None,
    )


def run_act(title: str, gateway: MembershipGateway) -> None:
    print(f"=== {title} ===")
    print(f"gateway: {SHARDS} shards of m={SHARD_M}, k={SHARD_K}, "
          f"router {gateway.picker.name}, rotate at fill {THRESHOLD}")
    # The adversary aims through the public router regardless of what the
    # gateway actually uses -- with keyed routing that aim is wrong.
    driver = AdversarialTrafficDriver(gateway, seed=7, attacker_router=HashShardPicker())
    report = asyncio.run(driver.run(**WORKLOAD))
    print(report.render())
    for event in gateway.rotation_log:
        print(f"rotation: shard {event.shard_id} retired at fill "
              f"{event.retired_fill:.2f} ({event.retired_weight} bits, "
              f"{event.retired_insertions} insertions)")
    if not gateway.rotation_log:
        print("rotation: none (no shard crossed the saturation threshold)")
    print()


async def run_act_networked() -> None:
    """Act 4: the attack over TCP + process pool, then a warm restart."""
    print("=== act 4: full stack (TCP wire, process-pool shards, snapshot) ===")
    factory = partial(BloomFilter, SHARD_M, SHARD_K)
    gateway = MembershipGateway(
        factory,
        backend=ProcessPoolBackend(factory, SHARDS),
        picker=HashShardPicker(),
        policy=parse_policy(f"fill:{THRESHOLD}"),
    )
    try:
        async with MembershipServer(gateway) as server:
            host, port = server.address
            print(f"gateway: {SHARDS} shard workers behind tcp://{host}:{port}")
            client = MembershipClient(host, port)
            driver = AdversarialTrafficDriver(
                gateway, seed=7, attacker_router=HashShardPicker(), transport=client
            )
            report = await driver.run(**WORKLOAD)
            print(report.render())
            await client.aclose()

        # Snapshot, "restart" into a fresh gateway (new workers), re-probe.
        raw = snapshot_gateway(gateway)
        restarted = MembershipGateway(
            factory,
            backend=ProcessPoolBackend(factory, SHARDS),
            picker=HashShardPicker(),
            policy=parse_policy(f"fill:{THRESHOLD}"),
        )
        try:
            restore_gateway(restarted, raw)
            probes = UrlFactory(seed=0xCAFE).urls(200)
            before = await gateway.query_batch(probes)
            after = await restarted.query_batch(probes)
            print(
                f"warm restart: {len(raw)} snapshot bytes, "
                f"{restarted.rotations} rotation event(s) carried over, "
                f"200 probe answers {'identical' if before == after else 'DIVERGED'}"
            )
        finally:
            restarted.close()
    finally:
        gateway.close()
    print()


def run_act_lifecycle() -> None:
    """Act 5: pluggable rotation policies + snapshot-aware recycling."""
    print("=== act 5: lifecycle policies (adaptive spike, rotate-on-restore) ===")
    # The adaptive policy ignores fill entirely: it watches the positive
    # rate, which the ghost storm pushes far above the honest mix.
    gateway = MembershipGateway(
        lambda: BloomFilter(SHARD_M, SHARD_K),
        shards=SHARDS,
        picker=HashShardPicker(),
        policy=parse_policy("adaptive:0.6:32"),
    )
    driver = AdversarialTrafficDriver(gateway, seed=7, attacker_router=HashShardPicker())
    report = asyncio.run(driver.run(**WORKLOAD))
    print(f"adaptive policy: {report.rotations} rotation(s) "
          f"{report.rotation_reasons or ''} -- each one invalidates every "
          f"ghost forged against the retired bits")

    # Warm restart under rotate-on-restore: the restored shards' bits
    # were observable while the service was down, so they expire after a
    # short post-restore budget (the snapshot carries the policy state).
    spec = "restore:150+fill:0.4"
    restarted = MembershipGateway(
        lambda: BloomFilter(SHARD_M, SHARD_K),
        shards=SHARDS,
        picker=HashShardPicker(),
        policy=parse_policy(spec),
    )
    restore_gateway(restarted, snapshot_gateway(gateway))
    print(f"restored under '{spec}': shards flagged restored = "
          f"{[life.restored for life in restarted.lifecycle]}")
    report = asyncio.run(
        AdversarialTrafficDriver(restarted, seed=8).run(**WORKLOAD)
    )
    print(f"post-restore replay: {report.rotations} rotation(s) "
          f"{report.rotation_reasons}")
    print()


def run_act_defense_algebra() -> None:
    """Act 6: a composed defence live -- cooldown(adaptive) & fill."""
    print("=== act 6: defence algebra (cooldown(adaptive:spike) & fill guard) ===")
    # Conjunction: the ghost-storm tripwire fires only once the filter
    # holds enough state to be worth invalidating (fill >= 0.2), and the
    # cool-down wrapper guarantees a 150-op minimum filter lifetime --
    # a sustained storm cannot thrash the shard into permanent
    # emptiness; every refused rotation is tallied.
    spec = "cooldown:150(adaptive:0.6:32)&fill:0.2"
    gateway = MembershipGateway(
        lambda: BloomFilter(SHARD_M, SHARD_K),
        shards=SHARDS,
        picker=HashShardPicker(),
        policy=parse_policy(spec),
    )
    print(f"policy: {gateway.policy.spec()}")
    driver = AdversarialTrafficDriver(gateway, seed=7, attacker_router=HashShardPicker())
    report = asyncio.run(driver.run(**WORKLOAD))
    suppressed = sum(life.suppressed for life in gateway.lifecycle)
    print(f"composed policy: {report.rotations} rotation(s) "
          f"{report.rotation_reasons or ''}, {suppressed} refused by the "
          f"cool-down (the 'suppressed' column below)")
    print(gateway.render_stats())
    print()


async def run_act_cluster() -> None:
    """Act 7: three gateways, a keyed ring, a live mid-attack rebalance."""
    print("=== act 7: cluster tier (3 gateways, keyed router, live rebalance) ===")
    # The item router is a secret SipHash key, so the adversary's aim --
    # computed against the public hash -- is wrong twice over: wrong
    # shard, and (via the ring) often the wrong *gateway* entirely.
    config = ServiceConfig(
        shard_m=SHARD_M,
        shard_k=SHARD_K,
        rotation_threshold=None,
        router="siphash:" + bytes(range(16)).hex(),
    )
    async with ClusterHarness(
        ["alpha", "beta", "gamma"], total_shards=8, config=config
    ) as cluster:
        print(f"cluster: 8 global shards over {list(cluster.ring.nodes)}, "
              f"item router {cluster.picker.name}, "
              f"ownership epoch {cluster.ownership.epoch}")

        # The attacker crafts items that the PUBLIC router would send to
        # shard 0 -- the paper's chosen-insertion aim, rejection-sampled.
        aim = HashShardPicker()
        factory = UrlFactory(seed=0x7A)
        honest = factory.urls(240)
        crafted: list[str] = []
        while len(crafted) < 160:
            crafted.extend(
                url for url in factory.urls(256) if aim.pick(url, 8) == 0
            )
        crafted = crafted[:160]

        # A client minted BEFORE the rebalance: its ownership view will
        # go stale the moment the shard moves.
        stale = cluster.client()
        await stale.insert_batch(honest, client="honest")
        await stale.insert_batch(crafted[:80], client="attacker")

        view = cluster.view
        fills = [row.fill_ratio for row in view.snapshot()]
        print(f"mid-attack: aimed shard 0 at fill {fills[0]:.2f}, "
              f"cluster max/mean = {max(fills) / (sum(fills) / len(fills)):.2f} "
              "(the keyed router sprayed the aim)")
        print()
        print("--- before rebalance ---")
        print(view.render_stats())

        # Rebalance shard 0 away from its owner, mid-attack: snapshot
        # handoff under the serving lock, ownership epoch bumped last.
        source = cluster.ownership.owner_of(0)
        destination = next(n for n in cluster.ring.nodes if n != source)
        epoch = await cluster.move_shard(0, destination)
        print()
        print(f"rebalance: shard 0 handed {source} -> {destination} "
              f"(ownership epoch {epoch})")

        # The stale client keeps attacking: its first batch touching
        # shard 0 bounces off the old owner with NOT_OWNER, it learns
        # the new placement, and retries -- nothing is lost.
        await stale.insert_batch(crafted[80:], client="attacker")
        answers = await stale.query_batch(honest + crafted, client="audit")
        print(f"stale client: {stale.redirects_followed} redirect(s) "
              f"followed, {sum(answers)}/{len(answers)} tracked inserts "
              "still answer positive (zero lost)")
        print()
        print("--- after rebalance ---")
        print(cluster.view.render_stats())
    print()


if __name__ == "__main__":
    run_act("act 1: aimed pollution against public routing", build_gateway())
    run_act(
        "act 2: same attack, rate-limited clients",
        build_gateway(rate_limit=400.0),
    )
    run_act("act 3: same attack, keyed (secret) routing", build_gateway(keyed_routing=True))
    asyncio.run(run_act_networked())
    run_act_lifecycle()
    run_act_defense_algebra()
    asyncio.run(run_act_cluster())
