#!/usr/bin/env python3
"""Quickstart: Bloom filters, their adversaries, and the fix.

Walks the paper's core story in five steps:
  1. build a classically-optimal Bloom filter;
  2. watch an honest workload behave as designed;
  3. mount the chosen-insertion pollution attack (Fig. 3);
  4. forge a false positive as a query-only adversary;
  5. deploy the keyed-hash countermeasure and watch both attacks die.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

from repro import BloomFilter, KeyedBloomFilter
from repro.adversary import GhostForgery, PollutionAttack
from repro.core.params import BloomParameters
from repro.urlgen import UrlFactory


def main() -> None:
    # 1. Design a filter the way the paper's victims do: pick capacity and
    #    a false-positive budget, derive (m, k) classically.
    params = BloomParameters.design_optimal(n=600, f=0.077)
    print(f"designed filter: m={params.m} bits, k={params.k} hashes "
          f"(honest FP at capacity ~ {params.fpp:.3f})")

    # 2. Honest workload: random URLs fill roughly half the bits.
    honest = BloomFilter.from_parameters(params)
    factory = UrlFactory(seed=1)
    urls = factory.urls(600)
    for url in urls:
        honest.add(url)
    print(f"honest fill after 600 inserts: {honest.fill_ratio:.2f} "
          f"(FP now ~ {honest.current_fpp():.3f})")
    assert all(url in honest for url in urls)  # no false negatives, ever

    # 3. Chosen-insertion adversary: every crafted item sets k fresh bits.
    attacked = BloomFilter.from_parameters(params)
    attack = PollutionAttack(attacked, seed=2)
    report = attack.run(600)
    print(f"attacked fill after 600 crafted inserts: {attacked.fill_ratio:.2f} "
          f"(FP forced to {attacked.current_fpp():.3f}, paper: 0.316)")
    print(f"   crafting cost: {report.total_trials} candidate URLs tried")

    # 4. Query-only adversary: forge an item the filter swears it has seen.
    ghost = GhostForgery(attacked, seed=3).craft_one()
    print(f"forged false positive after {ghost.trials} trials: {ghost.item!r}")
    assert ghost.item in attacked and ghost.item not in urls

    # 5. Countermeasure: keyed hashing. Same geometry, secret key.
    keyed = KeyedBloomFilter.for_capacity(600, 0.077)  # key auto-generated
    shadow = BloomFilter.from_parameters(params)  # what the attacker models
    crafted = PollutionAttack(shadow, seed=4).run(600).items
    for item in crafted:
        keyed.add(item)
    print(f"keyed filter fill under the same crafted items: "
          f"{keyed.fill_ratio:.2f} (back to the honest curve)")


if __name__ == "__main__":
    main()
