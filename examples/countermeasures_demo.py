#!/usr/bin/env python3
"""Choosing and validating countermeasures (paper Section 8).

Shows the three defences and the advisor that picks between them:

  * worst-case parameters (k = m/(en)): cheap, stops chosen-insertion;
  * keyed hashing (SipHash / HMAC): stops everyone, costs a MAC per op;
  * digest-bit recycling: makes the MAC affordable (Table 2 / Fig. 9).

Run: ``python examples/countermeasures_demo.py``
"""

from __future__ import annotations

import time

from repro.adversary import PollutionAttack
from repro.core import BloomFilter
from repro.countermeasures import (
    ThreatAssessment,
    compare_designs,
    hash_domain,
    recommend,
)
from repro.countermeasures.keyed import KeyedBloomFilter
from repro.urlgen import UrlFactory


def worst_case_demo() -> None:
    print("=== worst-case parameters (m=3200, n=600) ===")
    cmp = compare_designs(3200, 600)
    print(f"k: {cmp.k_optimal} -> {cmp.k_worst_case} "
          f"({cmp.hash_call_savings:.1f}x fewer hash calls)")
    print(f"honest FP: {cmp.optimal_honest:.4f} -> {cmp.worst_case_honest:.4f} "
          f"(x{cmp.honest_penalty:.2f} penalty)")
    print(f"adversary's ceiling: {cmp.optimal_adv:.4f} -> {cmp.worst_case_adv:.4f} "
          f"(x{cmp.adversarial_gain:.1f} better)")

    for k, label in ((cmp.k_optimal, "optimal"), (cmp.k_worst_case, "hardened")):
        target = BloomFilter(3200, k)
        PollutionAttack(target, seed=k).run(600)
        print(f"  live pollution against the {label} design: "
              f"FP forced to {target.current_fpp():.4f}")


def keyed_demo() -> None:
    print("\n=== keyed hashing: the universal fix ===")
    keyed = KeyedBloomFilter.for_capacity(600, 0.077, key=bytes(range(16)))
    shadow = BloomFilter(keyed.m, keyed.k)  # attacker's (keyless) model
    items = PollutionAttack(shadow, seed=5).run(600).items
    for item in items:
        keyed.add(item)
    print(f"600 crafted items: shadow weight {shadow.hamming_weight} (= nk), "
          f"keyed weight {keyed.hamming_weight} (uniform behaviour)")

    urls = UrlFactory(seed=6).urls(3000)
    start = time.perf_counter()
    for url in urls:
        url in keyed  # noqa: B015 - timing the query path
    per_query = (time.perf_counter() - start) / len(urls) * 1e6
    print(f"keyed query cost: {per_query:.1f} us "
          "(one recycled SipHash call per query)")


def recycling_demo() -> None:
    print("\n=== how far one hash call stretches (Fig. 9) ===")
    for f in (2**-5, 2**-10, 2**-15, 2**-20):
        domain = hash_domain(f, "sha512")
        print(f"f=2^-{domain.k:<3} one SHA-512 call covers filters up to "
              f"{domain.max_mbytes_one_call:,.0f} MB "
              f"({domain.calls_at_1gb} call(s) at 1 GB)")


def advisor_demo() -> None:
    print("\n=== the advisor ===")
    assessment = ThreatAssessment(
        untrusted_insertions=True,
        untrusted_queries=True,
        supports_deletion=True,
        server_side_secret_possible=True,
        performance_critical=True,
    )
    for i, rec in enumerate(recommend(assessment), start=1):
        print(f"{i}. {rec.measure}")
        print(f"   why:   {rec.rationale}")
        print(f"   cost:  {rec.cost}")
        print(f"   stops: {', '.join(rec.stops)}")


if __name__ == "__main__":
    worst_case_demo()
    keyed_demo()
    recycling_demo()
    advisor_demo()
