#!/usr/bin/env python3
"""Attacking a Dablooms-guarded URL shortener (paper Section 6).

Three escalating attacks on a Bitly-like service whose malicious-URL
blocklist is a scaling counting Bloom filter over MurmurHash3:

  1. pollution -- crafted abuse reports inflate the compound FP, so the
     service starts refusing legitimate shortening requests (Fig. 8);
  2. second-pre-image deletion -- MurmurHash inverts in constant time,
     so any blocklisted URL can be erased by retracting a forged twin;
  3. counter overflow -- single-counter keys wrap the 4-bit counters,
     leaving a slice that reports "full" while containing nothing.

Run: ``python examples/spam_filter_pollution.py``
"""

from __future__ import annotations

from repro.apps.dablooms import (
    DabloomsOverflowAttack,
    DabloomsPollutionAttack,
    SecondPreimageDeletion,
    ShorteningService,
)
from repro.urlgen import UrlFactory


def pollution_demo() -> None:
    print("=== 1. pollution: refusing legitimate customers ===")
    service = ShorteningService(slice_capacity=500, f0=0.01)
    attack = DabloomsPollutionAttack(service, seed=1)
    report = attack.run(total_slices=4, polluted_last=4)
    print(f"compound F after each polluted slice: "
          f"{[round(f, 3) for f in report.compound_fpp_after]}")

    factory = UrlFactory(seed=99)
    refused = sum(1 for _ in range(2000) if not service.shorten(factory.url()).allowed)
    print(f"legitimate URLs refused: {refused}/2000 "
          f"({refused / 2000:.1%}, design target was 1%)")


def deletion_demo() -> None:
    print("\n=== 2. constant-time deletion of a blocklisted URL ===")
    service = ShorteningService(slice_capacity=100)
    victim = "http://actual-malware.example/dropper"
    service.report_malicious(victim)
    print(f"blocked before: {service.is_blocked(victim)}")

    attack = SecondPreimageDeletion(service)
    twin = attack.forge_doppelganger(victim)
    print(f"forged twin key ({len(twin)} bytes) with identical murmur128 hash")
    erased = attack.erase(victim)
    print(f"victim erased: {erased}; shorten() now says "
          f"allowed={service.shorten(victim).allowed}")


def overflow_demo() -> None:
    print("\n=== 3. counter overflow: a full-but-empty slice ===")
    service = ShorteningService(slice_capacity=128)
    report = DabloomsOverflowAttack(service).run()
    blocklist = service.blocklist
    print(f"forged reports inserted: {report.items_inserted}")
    print(f"slice insertion counter: {blocklist.slice_fill(0)}/"
          f"{blocklist.slice_capacity} (looks full)")
    print(f"non-zero counters left:  {report.nonzero_counters_after} "
          f"({report.overflow_events} wraps)")
    print(f"forged keys still detected: "
          f"{report.items_inserted - report.lost_keys}/{report.items_inserted}")
    service.report_malicious("http://one-more.example/")
    print(f"next report scaled to slice #{blocklist.slice_count}: "
          "the wiped slice is pure memory waste")


if __name__ == "__main__":
    pollution_demo()
    deletion_demo()
    overflow_demo()
