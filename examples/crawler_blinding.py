#!/usr/bin/env python3
"""Blinding a web spider (paper Section 5).

Scenario: a Scrapy-like crawler deduplicates URLs with a Bloom filter
(pyBloom-style salted SHA hashing, public parameters).  The adversary
hosts the crawl's entry page and fills it with links crafted to pollute
the dedup filter; afterwards the victim site is crawled with an inflated
false-positive rate and whole subtrees vanish from the archive.  A
second adversary hides her own pages behind a decoy chain ending in a
forged "already seen" ghost URL (Fig. 7).

Run: ``python examples/crawler_blinding.py``
"""

from __future__ import annotations

from repro.apps.scrapy import (
    BlindingAttack,
    BloomDupeFilter,
    FingerprintSetDupeFilter,
    GhostHidingAttack,
    Spider,
    WebGraph,
)


def blinding_demo() -> None:
    print("=== blinding the spider (chosen-insertion) ===")
    victim = WebGraph.random_site("victim.example", 300, seed=3)

    for n_links in (100, 300, 600):
        attack = BlindingAttack(
            dupefilter_capacity=1000, dupefilter_error_rate=0.05, seed=0xBAD
        )
        report = attack.run(victim, n_links=n_links)
        print(
            f"{n_links:4d} malicious links -> victim coverage "
            f"{report.victim_coverage_attacked:6.1%} "
            f"(baseline {report.victim_coverage_baseline:.1%}), "
            f"filter FP {report.filter_fpp_after_attack:.3f}, "
            f"forgery cost {report.crafting_trials} trials"
        )

    print("\nexact-fingerprint dedup under the same attack (immune, but 77 B/URL):")
    attack = BlindingAttack(1000, 0.05, seed=0xBAD)
    site, _ = attack.build_adversary_site(600)
    world = WebGraph().merge(site).merge(victim)
    spider = Spider(world, FingerprintSetDupeFilter())
    spider.crawl([attack.root_url])
    stats = spider.crawl([victim.urls()[0]])
    print(f"coverage {stats.coverage_of(victim.urls()):.1%}, "
          f"memory {spider.dupefilter.memory_bytes() / 1024:.1f} KiB")


def ghost_demo() -> None:
    print("\n=== hiding pages from the spider (query-only, Fig. 7) ===")
    world = WebGraph.random_site("public.example", 200, seed=4)
    dupefilter = BloomDupeFilter(capacity=1500, error_rate=0.05)
    attack = GhostHidingAttack(dupefilter, seed=0x6057)
    report = attack.run(world, crawl_first=["http://public.example/"], depth=3)
    print(f"decoy chain: {' -> '.join(report.decoys)}")
    print(f"ghost URL:   {report.ghost_url}")
    print(f"ghost crafted in {report.crafting_trials} trials; "
          f"crawled by the spider? {report.ghost_crawled}")
    print(f"decoys crawled normally: {report.decoys_crawled}")


if __name__ == "__main__":
    blinding_demo()
    ghost_demo()
