#!/usr/bin/env python3
"""Polluting Squid cache digests (paper Section 7).

Two sibling proxies exchange Bloom-filter summaries of their caches
(m = 5n+7 bits, four indexes split from one MD5).  A malicious client
of proxy1 fetches crafted URLs through it; once digests are exchanged,
every probe from proxy2's clients that proxy1's digest wrongly claims
costs a wasted 10 ms round trip.

Run: ``python examples/cache_digest_attack.py``
"""

from __future__ import annotations

from repro.apps.squid import CacheDigestAttack, make_sibling_pair


def protocol_demo() -> None:
    print("=== sibling digests doing their legitimate job ===")
    pair = make_sibling_pair(sibling_rtt_ms=10.0, origin_latency_ms=50.0)
    pair.proxy1.client_fetch("http://popular.example/")
    pair.exchange_digests()

    outcome = pair.proxy2.client_fetch("http://popular.example/")
    print(f"proxy2 fetched via {outcome.source}: {outcome.latency_ms:.0f} ms "
          "(vs 50 ms from the origin)")


def attack_demo() -> None:
    print("\n=== the pollution attack (51 clean + 100 added URLs) ===")
    attack = CacheDigestAttack(
        clean_urls=51, added_urls=100, probes=100, sibling_rtt_ms=10.0, seed=7
    )
    polluted, control = attack.run()

    for report in (control, polluted):
        label = "polluted" if report.polluted else "control "
        print(
            f"{label}: digest {report.digest_bits} bits "
            f"(weight {report.digest_weight}), "
            f"false hits {report.false_hits}/{report.probes} "
            f"({report.false_hit_rate:.0%}), "
            f"wasted latency {report.added_latency_ms:.0f} ms"
        )
    print(f"\npaper observed 79% vs 40%; the mechanism (each false hit >= 1 RTT)"
          f" and the amplification "
          f"(x{polluted.false_hit_rate / max(control.false_hit_rate, 1e-9):.1f}) reproduce;"
          " see EXPERIMENTS.md for the baseline discussion")


if __name__ == "__main__":
    protocol_demo()
    attack_demo()
