#!/usr/bin/env python3
"""Evil choices in probabilistic counters (paper Section 10, realised).

The paper's conclusion names probabilistic counting as the next target
for its adversary models.  This example carries them over to
HyperLogLog -- the counter behind super-spreader detection, database
query planning and analytics -- using the same constant-time MurmurHash
inversion that broke Dablooms:

  * inflation -- a few hundred forged items impersonate trillions of
    distinct ones (poisoning a query planner or a DDoS detector);
  * evasion -- thousands of genuinely distinct items register as ~1
    (a super-spreader hiding from the detector);
  * the fix -- keyed hashing, exactly as for Bloom filters.

Run: ``python examples/cardinality_attacks.py``
"""

from __future__ import annotations

from repro.counting import (
    CountMinInflationAttack,
    CountMinSketch,
    HllEvasionAttack,
    HllInflationAttack,
    HyperLogLog,
    LinearCounter,
    LinearCounterSaturation,
)
from repro.hashing.siphash import siphash24
from repro.urlgen import UrlFactory


def honest_baseline() -> None:
    print("=== honest HyperLogLog (p=12, ~1.6% design error) ===")
    hll = HyperLogLog(p=12)
    for url in UrlFactory(seed=1).urls(100_000):
        hll.add(url)
    print(f"100000 distinct URLs -> estimate {hll.estimate():,.0f}")


def inflation() -> None:
    print("\n=== inflation: registers pinned at maximal rho ===")
    hll = HyperLogLog(p=10)
    for url in UrlFactory(seed=2).urls(200):
        hll.add(url)
    report = HllInflationAttack(hll).run()
    print(f"estimate before: {report.estimate_before:,.0f}")
    print(f"{report.items_inserted} forged items later: "
          f"{report.estimate_after:,.3g}")
    print(f"each forged item impersonated ~{report.inflation_factor:,.3g} "
          "distinct items")


def evasion() -> None:
    print("\n=== evasion: a super-spreader under the radar ===")
    hll = HyperLogLog(p=10)
    report = HllEvasionAttack(hll).run(10_000)
    print(f"{report.distinct_items_inserted} genuinely distinct forged keys "
          f"-> estimate {report.estimate_after:.1f}")
    print(f"hidden factor: x{report.evasion_factor:,.0f}")


def linear_counter_saturation() -> None:
    print("\n=== linear counting: the Bloom saturation attack, k=1 ===")
    counter = LinearCounter(4096)
    attack = LinearCounterSaturation(counter)
    estimate = attack.run()
    print(f"{attack.theoretical_items()} crafted items -> estimate {estimate}")


def count_min_framing() -> None:
    print("\n=== Count-Min: framing a quiet flow as a heavy hitter ===")
    sketch = CountMinSketch(width=1024, depth=5)
    victim = "10.0.0.7:443"
    sketch.add(victim, 2)  # two genuine packets
    for url in UrlFactory(seed=3).urls(500):
        sketch.add(url)
    report = CountMinInflationAttack(sketch).run(victim, forged_items=1000)
    print(f"victim's true count: {report.true_count}")
    print(f"estimate after 1000 full-collision forgeries: "
          f"{report.estimate_after} (min over all {sketch.depth} rows)")


def keyed_fix() -> None:
    print("\n=== the fix: keyed hashing (SipHash) ===")
    key = bytes(range(16))
    keyed = HyperLogLog(p=10, hash64=lambda data: siphash24(key, data))
    forger = HllInflationAttack(HyperLogLog(p=10))  # attacker's keyless model
    for register in range(keyed.m):
        keyed.add(forger.forge_key(register, 54))
    print(f"{keyed.m} forged 'inflation' keys against the keyed counter -> "
          f"estimate {keyed.estimate():,.0f} (just random items)")


if __name__ == "__main__":
    honest_baseline()
    inflation()
    evasion()
    linear_counter_saturation()
    count_min_framing()
    keyed_fix()
